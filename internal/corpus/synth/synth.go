// Package synth generates synthetic biomedical gene-mention corpora that
// stand in for the BC2GM and AML corpora of the GraphNER paper, which are
// not redistributable. The generator is deterministic under a fixed seed
// and reproduces the statistical properties the paper's experiments depend
// on:
//
//   - gene mentions drawn from an HGNC-like nomenclature grammar (symbols
//     such as "FLT3", hyphen-number forms such as "WT - 1", and multi-word
//     descriptive names such as "lymphocyte adaptor protein");
//   - recurring sentence templates, so the same 3-gram contexts appear in
//     both labelled and unlabelled data — the corpus-level redundancy that
//     graph propagation exploits;
//   - an annotation-noise model (missed and spurious gold mentions plus
//     inconsistent casing) for the BC2GM profile, versus near-clean expert
//     annotation for the AML profile;
//   - alternative annotations (boundary variants) in the BC2GM profile,
//     mirroring the ALTGENE file of the shared task;
//   - ambiguous non-gene tokens (disease acronyms, proper names such as
//     "Ann Arbor") that bait the supervised CRF into the spurious false
//     positives that GraphNER's precision gains come from.
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/tokenize"
)

// Profile selects which of the paper's two corpora to imitate.
type Profile int

const (
	// BC2GM imitates the BioCreative II gene mention corpus: abstracts
	// curated broadly from biology, inconsistent gene notation, noisy
	// student annotation, alternative annotations present.
	BC2GM Profile = iota
	// AML imitates the acute myeloid leukemia full-text corpus:
	// standardized HGNC nomenclature, expert annotation, little noise, no
	// alternative annotations.
	AML
)

func (p Profile) String() string {
	if p == AML {
		return "AML"
	}
	return "BC2GM"
}

// Config controls corpus generation. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	Profile   Profile
	Seed      int64
	Sentences int // total sentences to generate

	// GenePool is the number of distinct gene entities in the corpus.
	// Zero derives it from Sentences (open-vocabulary scaling: larger
	// corpora meet proportionally more distinct genes, as real biomedical
	// text does).
	GenePool int
	// AmbigPool is the number of distinct ambiguous gene-looking non-gene
	// tokens. Zero derives it from Sentences.
	AmbigPool int
	// MentionRate is the expected number of gene mentions per sentence.
	MentionRate float64
	// MissRate is the probability a true mention is absent from the gold
	// annotation (annotator missed it).
	MissRate float64
	// SpuriousRate is the probability that a sentence receives a gold
	// annotation over a non-gene span (annotator error).
	SpuriousRate float64
	// CaseNoise is the probability a mention is realized with
	// non-canonical casing ("wt1" for "WT1").
	CaseNoise float64
	// AltRate is the probability that a multi-token mention gets an
	// alternative boundary annotation.
	AltRate float64
	// AmbigRate is the probability a sentence carries an ambiguous
	// gene-looking non-gene token.
	AmbigRate float64
}

// DefaultConfig returns the calibrated configuration for a profile with the
// paper's corpus sizes: 15000+5000 sentences for BC2GM, 10504+3952 for AML.
// Callers wanting smaller corpora can reduce Sentences.
func DefaultConfig(p Profile, seed int64) Config {
	switch p {
	case AML:
		return Config{
			Profile:      AML,
			Seed:         seed,
			Sentences:    10504 + 3952,
			MentionRate:  0.75,
			MissRate:     0.004,
			SpuriousRate: 0.002,
			CaseNoise:    0.03,
			AltRate:      0,
			AmbigRate:    0.16,
		}
	default:
		return Config{
			Profile:      BC2GM,
			Seed:         seed,
			Sentences:    15000 + 5000,
			MentionRate:  0.85,
			MissRate:     0.045,
			SpuriousRate: 0.02,
			CaseNoise:    0.12,
			AltRate:      0.25,
			AmbigRate:    0.22,
		}
	}
}

// Gene is one entity in the generated nomenclature.
type Gene struct {
	Symbol   string   // canonical symbol, e.g. "FLT3"
	FullName []string // multi-word descriptive name, possibly nil
	Variants []string // surface variants (hyphenated, lowercase, ...)
}

// Generator produces corpora. Create one with NewGenerator; a Generator is
// not safe for concurrent use.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	genes []Gene
	ambig []string // extended pool of gene-looking non-gene tokens
	next  int      // sentence ID counter
}

// Curated seed symbols lend the generated nomenclature realistic shape;
// the pool is extended with grammar-generated symbols.
var seedSymbols = []string{
	"FLT3", "NPM1", "DNMT3A", "IDH1", "IDH2", "TET2", "RUNX1", "CEBPA",
	"TP53", "KIT", "NRAS", "KRAS", "WT1", "ASXL1", "SRSF2", "U2AF1",
	"EZH2", "KMT2A", "JAK2", "SH2B3", "GATA2", "STAG2", "BCOR", "PHF6",
	"BRCA1", "BRCA2", "EGFR", "MYC", "PTEN", "RB1", "NOTCH1", "CDKN2A",
	"ABL1", "BCR", "PML", "RARA", "MLLT3", "NUP98", "SETBP1", "CSF3R",
}

var fullNameAdjectives = []string{
	"lymphocyte", "myeloid", "erythroid", "hematopoietic", "epithelial",
	"neuronal", "hepatic", "renal", "cardiac", "vascular", "embryonic",
	"mitochondrial", "nuclear", "cytoplasmic", "membrane", "ribosomal",
}

var fullNameHeads = []string{
	"adaptor protein", "transcription factor", "tyrosine kinase",
	"growth factor", "receptor", "binding protein", "zinc finger",
	"methyltransferase", "deacetylase", "ligase", "phosphatase",
	"tumor suppressor", "homeobox protein", "ubiquitin ligase",
	"signal transducer", "ion channel",
}

// Ambiguous gene-looking tokens that are NOT genes: disease acronyms,
// places, assay names. These drive the spurious-false-positive behaviour
// analysed in Figures 4 and 5 of the paper.
var ambiguousTokens = []string{
	"MPN", "MDS", "CML", "ALL", "FAB", "WHO", "ELN", "NCCN", "PCR",
	"FISH", "NGS", "Ann Arbor", "Mayo Clinic", "RNA", "DNA", "mRNA",
	"CT", "MRI", "HR", "OS", "CR", "VAF", "SNP",
}

var diseases = []string{
	"acute myeloid leukemia", "myelodysplastic syndrome",
	"chronic myeloid leukemia", "breast cancer", "lung adenocarcinoma",
	"colorectal cancer", "glioblastoma", "melanoma", "lymphoma",
	"multiple myeloma", "ovarian cancer",
}

var processes = []string{
	"cell proliferation", "apoptosis", "differentiation", "DNA repair",
	"signal transduction", "chromatin remodeling", "hematopoiesis",
	"angiogenesis", "cell cycle arrest", "methylation",
}

// Sentence templates. {G} is a gene slot, {G2} a second distinct gene,
// {D} a disease, {P} a process, {X} an ambiguous non-gene token. Templates
// recur across the corpus so that identical 3-gram contexts appear in both
// train and test partitions.
var templates = []string{
	"Recently , the mutation of {G} ( {G2} ) was detected in {D} .",
	"We observed the following mutations in {G} .",
	"Expression of {G} was significantly higher in {D} patients .",
	"The {G} gene encodes a protein involved in {P} .",
	"Mutations in {G} and {G2} frequently co-occur in {D} .",
	"{G} expression correlated with poor prognosis in {D} .",
	"Loss of {G} function leads to impaired {P} .",
	"We did not observe this mutation in the patient 's tumor subclone .",
	"Drug response was significant in {G} positive patients .",
	"Knockdown of {G} reduced {P} in vitro .",
	"Sequencing revealed a novel variant of {G} in the proband .",
	"The interaction between {G} and {G2} regulates {P} .",
	"Patients were stratified by {X} criteria before analysis .",
	"Samples were analyzed at {X} using standard protocols .",
	"{G} is a known driver of {P} in {D} .",
	"Overexpression of {G} rescued the phenotype .",
	"No significant association was found between treatment and outcome .",
	"The cohort included patients diagnosed with {D} .",
	"Methylation of the {G} promoter silences its expression .",
	"Phosphorylation of {G} by {G2} activates downstream {P} .",
	"The study was approved by the institutional review board .",
	"Variant allele frequency of {G} mutations exceeded ten percent .",
	"{X} classification was used to grade the tumors .",
	"Wild type {G} restored normal {P} .",
	"Somatic mutations of {G} were enriched in relapsed {D} .",
	"Follow up imaging by {X} showed stable disease .",
	"The {G} fusion transcript was detected by {X} .",
	"Homozygous deletion of {G} abolished {P} .",
	"Patients harboring {G} mutations received intensified therapy .",
	"Results were consistent across both validation cohorts .",
	// {XG} puts an ambiguous non-gene token in a gene-like context:
	// sentence-local evidence suggests a gene, but the token's other
	// corpus occurrences (neutral contexts, labelled O) do not. These
	// sentences bait the supervised CRF into spurious false positives.
	"Expression of {XG} was significantly higher in {D} patients .",
	"{XG} expression correlated with poor prognosis in {D} .",
	"Somatic mutations of {XG} were enriched in relapsed {D} .",
	"Knockdown of {XG} reduced {P} in vitro .",
	"Mutations in {XG} and {G} frequently co-occur in {D} .",
	// Neutral recurrences of ambiguous tokens, so the corpus carries the
	// disambiguating evidence.
	"Scores from {X} were recorded for every participant .",
	"Enrollment followed the {X} guidelines .",
	"Assessment according to {X} was repeated annually .",
}

// sharedFrames are contexts that genes and ambiguous non-gene tokens fill
// with comparable probability (the {GX} slot). Within the sentence the two
// are indistinguishable — both are capitalized acronym-like tokens in the
// same frame — so a sentence-local tagger must guess, while corpus-level
// aggregation over the token's other occurrences (clear gene frames for
// genes, neutral frames for the rest) resolves it. This is the central
// ambiguity GraphNER exploits; these frames keep the supervised baseline
// away from its ceiling at every corpus size.
var sharedFrames = []string{
	"The role of {GX} in disease progression remains unclear .",
	"Analysis of {GX} revealed significant heterogeneity .",
	"{GX} status was assessed at diagnosis .",
	"Levels of {GX} varied across the cohort .",
	"{GX} was associated with inferior outcome .",
	"The prognostic value of {GX} was evaluated .",
	"Changes in {GX} were monitored during therapy .",
	"{GX} positivity predicted early relapse .",
	"We examined the contribution of {GX} to treatment failure .",
	"Stratification by {GX} did not alter the findings .",
}

// backgroundTemplates contain no gene slots; they are substituted in when
// the mention-rate model decides a sentence should be gene-free.
var backgroundTemplates = []string{
	"We did not observe this mutation in the patient 's tumor subclone .",
	"No significant association was found between treatment and outcome .",
	"The cohort included patients diagnosed with {D} .",
	"The study was approved by the institutional review board .",
	"Results were consistent across both validation cohorts .",
	"Patients were stratified by {X} criteria before analysis .",
	"Samples were analyzed at {X} using standard protocols .",
	"Follow up imaging by {X} showed stable disease .",
	"{X} classification was used to grade the tumors .",
	"Median follow up was eighteen months in both arms .",
	"Statistical analysis was performed with standard software .",
	"Informed consent was obtained from all participants .",
}

// Pools for compositional background clauses. Their cross product yields
// on the order of 10^5 distinct clauses, giving the corpus the background
// 3-gram diversity of real abstracts, which keeps the positively-labelled
// vertex fraction low (paper §III-D).
var clauseConnectors = []string{
	", consistent with", ", suggesting", ", indicating", ", reflecting",
	", in line with", ", supporting", ", despite", ", independent of",
	", in contrast to", ", as expected from", ", likely due to",
	", possibly through", ", in agreement with", ", irrespective of",
}

var clauseAdjectives = []string{
	"reduced", "elevated", "aberrant", "persistent", "transient",
	"differential", "constitutive", "ectopic", "impaired", "enhanced",
	"diminished", "sustained", "selective", "widespread", "focal",
	"progressive", "residual", "heterogeneous", "clonal", "subclonal",
	"early", "late", "primary", "secondary", "recurrent", "refractory",
	"baseline", "post treatment", "pre treatment", "longitudinal",
}

var clauseNouns = []string{
	"transcript abundance", "protein stability", "pathway activation",
	"clonal evolution", "disease burden", "treatment response",
	"marrow cellularity", "blast percentage", "remission duration",
	"survival benefit", "risk stratification", "karyotype complexity",
	"epigenetic regulation", "splicing efficiency", "copy number change",
	"allelic imbalance", "promoter activity", "enhancer usage",
	"chromatin accessibility", "replication stress", "oxidative stress",
	"immune infiltration", "stromal interaction", "cytokine signaling",
	"kinase activity", "transcriptional output", "translation efficiency",
	"protein localization", "complex assembly", "feedback inhibition",
	"drug sensitivity", "resistance emergence", "relapse kinetics",
	"engraftment potential", "self renewal", "lineage commitment",
	"differentiation arrest", "proliferative capacity", "apoptotic priming",
	"genomic instability",
}

// NewGenerator builds a Generator with a deterministic gene pool derived
// from cfg.Seed.
func NewGenerator(cfg Config) *Generator {
	if cfg.GenePool <= 0 {
		// Open-vocabulary scaling: the distinct-gene count grows with the
		// corpus, so a fraction of test genes is always unseen in
		// training, as in real biomedical text. AML's standardized
		// nomenclature is smaller.
		div := 3
		if cfg.Profile == AML {
			div = 4
		}
		cfg.GenePool = cfg.Sentences / div
		if cfg.GenePool < 150 {
			cfg.GenePool = 150
		}
	}
	if cfg.AmbigPool <= 0 {
		cfg.AmbigPool = cfg.Sentences / 10
		if cfg.AmbigPool < 80 {
			cfg.AmbigPool = 80
		}
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.genes = g.makeGenePool(cfg.GenePool)
	g.ambig = g.makeAmbigPool(cfg.AmbigPool)
	return g
}

// makeAmbigPool extends the curated ambiguous tokens with generated
// acronyms and proper names. These look orthographically like genes
// (capitalized, short) but are never genes; they recur across the corpus
// in both gene-like and neutral contexts, creating precisely the
// spurious-false-positive opportunity that GraphNER's corpus-level
// aggregation corrects and a sentence-local CRF cannot (§III-E).
func (g *Generator) makeAmbigPool(n int) []string {
	pool := append([]string(nil), ambiguousTokens...)
	used := make(map[string]bool)
	geneSyms := make(map[string]bool)
	for _, t := range pool {
		used[t] = true
	}
	for _, ge := range g.genes {
		geneSyms[ge.Symbol] = true
	}
	letters := "BCDFGHJKLMNPQRSTVWXZ"
	cities := []string{"Boston", "Toronto", "Leiden", "Kyoto", "Geneva", "Dallas", "Oslo", "Lyon"}
	inst := []string{"Registry", "Consortium", "Cohort", "Protocol", "Group", "Panel", "Score", "Index"}
	for len(pool) < n {
		var tok string
		if g.rng.Float64() < 0.3 {
			tok = cities[g.rng.Intn(len(cities))] + " " + inst[g.rng.Intn(len(inst))]
		} else {
			ln := 2 + g.rng.Intn(3)
			var b strings.Builder
			for i := 0; i < ln; i++ {
				b.WriteByte(letters[g.rng.Intn(len(letters))])
			}
			tok = b.String()
		}
		if used[tok] || geneSyms[tok] {
			continue
		}
		used[tok] = true
		pool = append(pool, tok)
	}
	return pool
}

// pickAmbig draws from the ambiguous pool with a mild skew. The pool is
// sized so typical tokens recur a handful of times: enough corpus-level
// evidence for graph propagation to learn they are not genes, while their
// rarity keeps the CRF's lexical weights too weak to resist a gene-like
// context — the exact regime where GraphNER's precision corrections
// operate (§III-E).
func (g *Generator) pickAmbig() string {
	u := g.rng.Float64()
	idx := int(u * u * float64(len(g.ambig)))
	if idx >= len(g.ambig) {
		idx = len(g.ambig) - 1
	}
	return g.ambig[idx]
}

// makeGenePool builds the nomenclature: seed symbols first, then
// grammar-generated ones. Each entity may carry a full descriptive name
// and surface variants.
func (g *Generator) makeGenePool(n int) []Gene {
	pool := make([]Gene, 0, n)
	used := make(map[string]bool)
	add := func(sym string) {
		if used[sym] {
			return
		}
		used[sym] = true
		ge := Gene{Symbol: sym}
		// ~40% of genes also have a descriptive multi-word name.
		if g.rng.Float64() < 0.4 {
			adj := fullNameAdjectives[g.rng.Intn(len(fullNameAdjectives))]
			head := fullNameHeads[g.rng.Intn(len(fullNameHeads))]
			ge.FullName = strings.Fields(adj + " " + head)
			if g.rng.Float64() < 0.3 {
				ge.FullName = append(ge.FullName, fmt.Sprint(1+g.rng.Intn(3)))
			}
		}
		// Variants: hyphen-digit split and lowercase.
		if i := strings.IndexFunc(sym, isDigit); i > 0 {
			ge.Variants = append(ge.Variants, sym[:i]+" - "+sym[i:])
		}
		ge.Variants = append(ge.Variants, strings.ToLower(sym))
		pool = append(pool, ge)
	}
	for _, s := range seedSymbols {
		if len(pool) >= n {
			break
		}
		add(s)
	}
	letters := "ABCDEFGHIKLMNPRSTUVWXYZ"
	for len(pool) < n {
		ln := 2 + g.rng.Intn(4)
		var b strings.Builder
		for i := 0; i < ln; i++ {
			b.WriteByte(letters[g.rng.Intn(len(letters))])
		}
		if g.rng.Float64() < 0.7 {
			fmt.Fprintf(&b, "%d", 1+g.rng.Intn(19))
		}
		add(b.String())
	}
	return pool
}

// Genes exposes the generated nomenclature (for tests and examples).
func (g *Generator) Genes() []Gene { return g.genes }

// zipfGene picks a gene with a Zipf-like skew so frequent genes recur —
// the redundancy that makes 3-gram statistics informative.
func (g *Generator) zipfGene() *Gene {
	u := g.rng.Float64()
	idx := int(u * u * float64(len(g.genes)))
	if idx >= len(g.genes) {
		idx = len(g.genes) - 1
	}
	return &g.genes[idx]
}

// realizeGene picks a surface form for the gene and reports it.
func (g *Generator) realizeGene(ge *Gene) string {
	r := g.rng.Float64()
	switch {
	case ge.FullName != nil && r < 0.25:
		return strings.Join(ge.FullName, " ")
	case len(ge.Variants) > 1 && r < 0.25+g.cfg.CaseNoise:
		return ge.Variants[g.rng.Intn(len(ge.Variants))]
	case len(ge.Variants) > 0 && r < 0.35 && g.cfg.Profile == BC2GM:
		return ge.Variants[0]
	default:
		return ge.Symbol
	}
}

// genSentence renders one template into sentence text plus true gene spans
// (byte ranges into the text).
func (g *Generator) genSentence() (text string, genes []span, ambig []span) {
	tpl := templates[g.rng.Intn(len(templates))]
	// Mention-rate adjustment: sometimes substitute a gene-free template.
	if g.rng.Float64() > g.cfg.MentionRate {
		tpl = backgroundTemplates[g.rng.Intn(len(backgroundTemplates))]
	}
	// A small share of sentences use shared gene-or-ambiguous frames.
	if g.rng.Float64() < 0.06 {
		tpl = sharedFrames[g.rng.Intn(len(sharedFrames))]
	}
	var b strings.Builder
	var g1 *Gene
	for len(tpl) > 0 {
		i := strings.IndexByte(tpl, '{')
		if i < 0 {
			b.WriteString(tpl)
			break
		}
		b.WriteString(tpl[:i])
		j := strings.IndexByte(tpl[i:], '}')
		if j < 0 {
			b.WriteString(tpl[i:])
			break
		}
		slot := tpl[i+1 : i+j]
		tpl = tpl[i+j+1:]
		switch slot {
		case "G", "G2":
			ge := g.zipfGene()
			if slot == "G2" && g1 != nil {
				for ge == g1 {
					ge = g.zipfGene()
				}
			}
			if slot == "G" {
				g1 = ge
			}
			surface := g.realizeGene(ge)
			start := b.Len()
			b.WriteString(surface)
			genes = append(genes, span{start, b.Len()})
		case "D":
			b.WriteString(diseases[g.rng.Intn(len(diseases))])
		case "P":
			b.WriteString(processes[g.rng.Intn(len(processes))])
		case "X", "XG":
			tok := g.pickAmbig()
			start := b.Len()
			b.WriteString(tok)
			ambig = append(ambig, span{start, b.Len()})
		case "GX":
			// Shared frame: a gene slightly more often than an ambiguous
			// token, realized identically (canonical symbol form).
			if g.rng.Float64() < 0.55 {
				ge := g.zipfGene()
				start := b.Len()
				b.WriteString(ge.Symbol)
				genes = append(genes, span{start, b.Len()})
			} else {
				tok := g.pickAmbig()
				start := b.Len()
				b.WriteString(tok)
				ambig = append(ambig, span{start, b.Len()})
			}
		}
	}
	// Optionally append an ambiguous clause to background sentences.
	if len(ambig) == 0 && g.rng.Float64() < g.cfg.AmbigRate {
		tok := g.pickAmbig()
		s := b.String()
		if strings.HasSuffix(s, ".") {
			b.Reset()
			b.WriteString(strings.TrimSuffix(s, "."))
			b.WriteString("as reported by ")
			start := b.Len()
			b.WriteString(tok)
			ambig = append(ambig, span{start, b.Len()})
			b.WriteString(" .")
		}
	}
	// Append background clauses: compositional prose clauses and
	// statistics clauses with fresh numerals. Their diversity keeps the
	// fraction of positively labelled graph vertices low, as in the paper
	// (§III-D: 8.5% for BC2GM, 1.75% for AML).
	for n := 1 + g.rng.Intn(3); n > 0; n-- {
		s := strings.TrimSuffix(strings.TrimSuffix(b.String(), "."), " ")
		b.Reset()
		b.WriteString(s)
		if g.rng.Float64() < 0.5 {
			b.WriteString(g.proseClause())
		} else {
			b.WriteString(" ")
			b.WriteString(g.statsClause())
		}
		b.WriteString(" .")
	}
	return b.String(), genes, ambig
}

// proseClause renders a compositional background clause such as
// ", consistent with reduced transcript abundance".
func (g *Generator) proseClause() string {
	return clauseConnectors[g.rng.Intn(len(clauseConnectors))] + " " +
		clauseAdjectives[g.rng.Intn(len(clauseAdjectives))] + " " +
		clauseNouns[g.rng.Intn(len(clauseNouns))]
}

// statsClause renders a randomized parenthetical or trailing statistical
// phrase, e.g. "( n = 127 , p = 0.0031 )".
func (g *Generator) statsClause() string {
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("( n = %d )", 20+g.rng.Intn(9800))
	case 1:
		return fmt.Sprintf("( p = 0.%04d )", g.rng.Intn(10000))
	case 2:
		return fmt.Sprintf("in %d of %d patients", 1+g.rng.Intn(800), 801+g.rng.Intn(4000))
	case 3:
		return fmt.Sprintf("( hazard ratio %d.%03d )", g.rng.Intn(4), g.rng.Intn(1000))
	case 4:
		return fmt.Sprintf("with %d.%02d percent frequency", g.rng.Intn(60), g.rng.Intn(100))
	case 5:
		return fmt.Sprintf("( see reference %d )", 1+g.rng.Intn(99999))
	case 6:
		return fmt.Sprintf("( accession %c%c%06d )",
			'A'+rune(g.rng.Intn(26)), 'A'+rune(g.rng.Intn(26)), g.rng.Intn(1000000))
	default:
		return fmt.Sprintf("( %d %% confidence interval %d.%02d to %d.%02d )",
			90+g.rng.Intn(9), g.rng.Intn(3), g.rng.Intn(100), 3+g.rng.Intn(4), g.rng.Intn(100))
	}
}

type span struct{ start, end int } // byte offsets, end exclusive

// toMention converts a byte span into a space-free inclusive Mention.
func toMention(text string, sp span) corpus.Mention {
	sf := 0
	var start, end int
	for i, r := range text {
		if i == sp.start {
			start = sf
		}
		if i >= sp.end {
			break
		}
		if r != ' ' && r != '\t' {
			sf++
		}
		if i < sp.end {
			end = sf - 1
		}
	}
	return corpus.Mention{Start: start, End: end, Text: text[sp.start:sp.end]}
}

// Generate produces the full corpus for the configuration. Gold mentions
// reflect the annotation-noise model; the returned corpus's Alternatives
// carry boundary variants for the BC2GM profile.
func (g *Generator) Generate() *corpus.Corpus {
	c := corpus.New()
	for i := 0; i < g.cfg.Sentences; i++ {
		id := fmt.Sprintf("%s%07d", g.cfg.Profile, g.next)
		g.next++
		text, genes, ambig := g.genSentence()
		s := &corpus.Sentence{ID: id, Text: text, Tokens: tokenize.Sentence(text)}

		var gold []corpus.Mention
		for _, sp := range genes {
			if g.rng.Float64() < g.cfg.MissRate {
				continue // annotator missed this mention
			}
			m := toMention(text, sp)
			gold = append(gold, m)
			// Alternative boundary annotation for multi-token mentions.
			if g.cfg.AltRate > 0 && strings.Contains(m.Text, " ") && g.rng.Float64() < g.cfg.AltRate {
				alt := trimFirstToken(text, sp)
				if alt != nil {
					am := toMention(text, *alt)
					c.Alternatives[id] = append(c.Alternatives[id], am)
				}
			}
		}
		// Spurious gold annotation over an ambiguous token.
		if len(ambig) > 0 && g.rng.Float64() < g.cfg.SpuriousRate {
			gold = append(gold, toMention(text, ambig[0]))
		}
		s.Tags = corpus.TagsFromMentions(s.Tokens, gold)
		c.Sentences = append(c.Sentences, s)
	}
	return c
}

// trimFirstToken returns the span with its first space-delimited token
// removed, or nil if that leaves nothing.
func trimFirstToken(text string, sp span) *span {
	seg := text[sp.start:sp.end]
	i := strings.IndexByte(seg, ' ')
	if i < 0 || i+1 >= len(seg) {
		return nil
	}
	return &span{sp.start + i + 1, sp.end}
}

// GenerateSplit generates the corpus and splits it into train and test
// partitions of the sizes used in the paper (or proportionally if
// cfg.Sentences differs from the default).
func GenerateSplit(cfg Config) (train, test *corpus.Corpus) {
	g := NewGenerator(cfg)
	c := g.Generate()
	var nTrain int
	switch cfg.Profile {
	case AML:
		nTrain = cfg.Sentences * 10504 / (10504 + 3952)
	default:
		nTrain = cfg.Sentences * 15000 / 20000
	}
	return c.Split(nTrain)
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }
