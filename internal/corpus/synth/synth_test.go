package synth

import (
	"strings"
	"testing"

	"repro/internal/corpus"
)

func smallConfig(p Profile, n int) Config {
	cfg := DefaultConfig(p, 42)
	cfg.Sentences = n
	return cfg
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(smallConfig(BC2GM, 200)).Generate()
	b := NewGenerator(smallConfig(BC2GM, 200)).Generate()
	if len(a.Sentences) != len(b.Sentences) {
		t.Fatal("size mismatch")
	}
	for i := range a.Sentences {
		if a.Sentences[i].Text != b.Sentences[i].Text {
			t.Fatalf("sentence %d differs:\n%q\n%q", i, a.Sentences[i].Text, b.Sentences[i].Text)
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	cfg2 := smallConfig(BC2GM, 200)
	cfg2.Seed = 43
	a := NewGenerator(smallConfig(BC2GM, 200)).Generate()
	b := NewGenerator(cfg2).Generate()
	same := 0
	for i := range a.Sentences {
		if a.Sentences[i].Text == b.Sentences[i].Text {
			same++
		}
	}
	if same == len(a.Sentences) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestCorpusShape(t *testing.T) {
	c := NewGenerator(smallConfig(BC2GM, 1000)).Generate()
	if len(c.Sentences) != 1000 {
		t.Fatalf("got %d sentences", len(c.Sentences))
	}
	mentions := c.NumMentions()
	if mentions < 300 || mentions > 2500 {
		t.Errorf("mention count %d outside plausible range", mentions)
	}
	// Every sentence must have consistent tokens/tags.
	for _, s := range c.Sentences {
		if len(s.Tags) != len(s.Tokens) {
			t.Fatalf("sentence %s: %d tags for %d tokens", s.ID, len(s.Tags), len(s.Tokens))
		}
	}
}

func TestMentionTextsAreGeneLike(t *testing.T) {
	g := NewGenerator(smallConfig(AML, 500))
	c := g.Generate()
	// Collect all known surfaces.
	known := make(map[string]bool)
	for _, ge := range g.Genes() {
		known[ge.Symbol] = true
		if ge.FullName != nil {
			known[strings.Join(ge.FullName, " ")] = true
		}
		for _, v := range ge.Variants {
			known[v] = true
		}
	}
	// AML profile has near-zero noise, so nearly all gold mentions should
	// be known gene surfaces.
	total, unknown := 0, 0
	for _, s := range c.Sentences {
		for _, m := range s.Mentions() {
			total++
			if !known[m.Text] {
				unknown++
			}
		}
	}
	if total == 0 {
		t.Fatal("no mentions generated")
	}
	if frac := float64(unknown) / float64(total); frac > 0.02 {
		t.Errorf("%.1f%% of AML mentions are not known gene surfaces", 100*frac)
	}
}

func TestBC2GMHasAlternatives(t *testing.T) {
	c := NewGenerator(smallConfig(BC2GM, 2000)).Generate()
	if len(c.Alternatives) == 0 {
		t.Error("BC2GM profile produced no alternative annotations")
	}
	for id, alts := range c.Alternatives {
		for _, a := range alts {
			if a.Start < 0 || a.End < a.Start || a.Text == "" {
				t.Fatalf("bad alternative for %s: %+v", id, a)
			}
		}
	}
}

func TestAMLHasNoAlternatives(t *testing.T) {
	c := NewGenerator(smallConfig(AML, 2000)).Generate()
	if len(c.Alternatives) != 0 {
		t.Errorf("AML profile produced %d alternatives, want 0", len(c.Alternatives))
	}
}

func TestDerivedPoolsScaleWithCorpus(t *testing.T) {
	small := smallConfig(BC2GM, 1000)
	big := smallConfig(BC2GM, 8000)
	gs := NewGenerator(small)
	gb := NewGenerator(big)
	if len(gb.Genes()) <= len(gs.Genes()) {
		t.Errorf("gene pool did not scale: %d vs %d", len(gs.Genes()), len(gb.Genes()))
	}
	// AML's standardized nomenclature stays somewhat smaller at equal size.
	ga := NewGenerator(smallConfig(AML, 8000))
	if len(ga.Genes()) >= len(gb.Genes()) {
		t.Errorf("AML pool (%d) should be below BC2GM's (%d)", len(ga.Genes()), len(gb.Genes()))
	}
}

func TestNoiseProfilesDiffer(t *testing.T) {
	// The BC2GM profile must carry more annotation noise than AML: compare
	// the rate at which generated gene spans are missing from gold.
	bc := DefaultConfig(BC2GM, 1)
	aml := DefaultConfig(AML, 1)
	if bc.MissRate <= aml.MissRate || bc.SpuriousRate <= aml.SpuriousRate {
		t.Error("BC2GM profile must be noisier than AML")
	}
	if bc.CaseNoise <= aml.CaseNoise {
		t.Error("BC2GM profile must have more case noise")
	}
}

func TestMentionOffsetsValid(t *testing.T) {
	c := NewGenerator(smallConfig(BC2GM, 500)).Generate()
	for _, s := range c.Sentences {
		collapsed := strings.ReplaceAll(s.Text, " ", "")
		for _, m := range s.Mentions() {
			if m.Start < 0 || m.End >= len(collapsed) {
				t.Fatalf("sentence %s: mention %+v out of range (len %d)", s.ID, m, len(collapsed))
			}
			want := strings.ReplaceAll(m.Text, " ", "")
			if got := collapsed[m.Start : m.End+1]; got != want {
				t.Fatalf("sentence %s: offsets select %q, mention text is %q", s.ID, got, want)
			}
		}
	}
}

func TestGenerateSplitSizes(t *testing.T) {
	cfg := smallConfig(BC2GM, 1000)
	train, test := GenerateSplit(cfg)
	if len(train.Sentences) != 750 || len(test.Sentences) != 250 {
		t.Errorf("split %d/%d, want 750/250", len(train.Sentences), len(test.Sentences))
	}
	cfg = smallConfig(AML, 1000)
	train, test = GenerateSplit(cfg)
	if len(train.Sentences)+len(test.Sentences) != 1000 {
		t.Error("AML split loses sentences")
	}
	if len(train.Sentences) <= len(test.Sentences) {
		t.Error("train should be larger than test")
	}
}

func TestPositiveVertexFractionLow(t *testing.T) {
	// Paper §III-D: the percentage of positively labelled vertices is low
	// (8.5% BC2GM, 1.75% AML). Check our corpora have minority-positive
	// trigram statistics too.
	for _, p := range []Profile{BC2GM, AML} {
		c := NewGenerator(smallConfig(p, 2000)).Generate()
		positive := make(map[corpus.NGram]bool)
		all := make(map[corpus.NGram]bool)
		for _, s := range c.Sentences {
			grams := s.Trigrams()
			for i, g := range grams {
				all[g] = true
				if s.Tags[i] != corpus.O {
					positive[g] = true
				}
			}
		}
		frac := float64(len(positive)) / float64(len(all))
		if frac > 0.35 {
			t.Errorf("%v: positive vertex fraction %.2f too high", p, frac)
		}
	}
}

func TestGenePoolSize(t *testing.T) {
	cfg := smallConfig(BC2GM, 2000)
	cfg.GenePool = 300
	g := NewGenerator(cfg)
	if len(g.Genes()) != 300 {
		t.Errorf("explicit pool size %d, want 300", len(g.Genes()))
	}
	seen := make(map[string]bool)
	for _, ge := range g.Genes() {
		if ge.Symbol == "" {
			t.Fatal("empty symbol")
		}
		if seen[ge.Symbol] {
			t.Fatalf("duplicate symbol %s", ge.Symbol)
		}
		seen[ge.Symbol] = true
	}
}

func BenchmarkGenerate1k(b *testing.B) {
	cfg := smallConfig(BC2GM, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewGenerator(cfg).Generate()
	}
}
