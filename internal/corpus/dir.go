package corpus

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// WriteDir writes the corpus to dir in the BioCreative II layout used by
// cmd/graphner: <prefix>.in (sentences), <prefix>.GENE.eval (primary
// annotations) and, when alternatives exist, <prefix>.ALTGENE.eval.
func (c *Corpus) WriteDir(dir, prefix string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("corpus: writing %s: %w", name, err)
		}
		return f.Close()
	}
	if err := write(prefix+".in", func(f *os.File) error { return c.WriteSentences(f) }); err != nil {
		return err
	}
	if err := write(prefix+".GENE.eval", func(f *os.File) error { return c.WriteAnnotations(f) }); err != nil {
		return err
	}
	if len(c.Alternatives) == 0 {
		return nil
	}
	return write(prefix+".ALTGENE.eval", func(f *os.File) error {
		bw := bufio.NewWriter(f)
		for _, s := range c.Sentences {
			for _, m := range c.Alternatives[s.ID] {
				if _, err := fmt.Fprintf(bw, "%s|%d %d|%s\n", s.ID, m.Start, m.End, m.Text); err != nil {
					return err
				}
			}
		}
		return bw.Flush()
	})
}

// ReadDir loads a corpus written by WriteDir (or by hand in the BC2GM
// layout). A missing ALTGENE file is not an error.
func ReadDir(dir, prefix string) (*Corpus, error) {
	sf, err := os.Open(filepath.Join(dir, prefix+".in"))
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer sf.Close()
	c, err := ReadSentences(sf)
	if err != nil {
		return nil, err
	}
	af, err := os.Open(filepath.Join(dir, prefix+".GENE.eval"))
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer af.Close()
	anns, err := ReadAnnotations(af)
	if err != nil {
		return nil, err
	}
	var alts map[string][]Mention
	if xf, err := os.Open(filepath.Join(dir, prefix+".ALTGENE.eval")); err == nil {
		alts, err = ReadAnnotations(xf)
		xf.Close()
		if err != nil {
			return nil, err
		}
	}
	c.ApplyAnnotations(anns, alts)
	return c, nil
}
