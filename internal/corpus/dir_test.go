package corpus

import (
	"reflect"
	"testing"
)

func TestWriteReadDirRoundTrip(t *testing.T) {
	c := New()
	c.Sentences = append(c.Sentences,
		makeSentence("the LNK gene", []Tag{O, B, O}),
		makeSentence("wilms tumor - 1 positive", []Tag{B, I, I, I, O}),
	)
	c.Sentences[0].ID = "S1"
	c.Sentences[1].ID = "S2"
	c.Alternatives["S2"] = []Mention{{Start: 5, End: 11, Text: "tumor - 1"}}

	dir := t.TempDir()
	if err := c.WriteDir(dir, "train"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDir(dir, "train")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sentences) != 2 {
		t.Fatalf("got %d sentences", len(got.Sentences))
	}
	for i := range got.Sentences {
		if got.Sentences[i].Text != c.Sentences[i].Text {
			t.Errorf("sentence %d text mismatch", i)
		}
		if !reflect.DeepEqual(got.Sentences[i].Tags, c.Sentences[i].Tags) {
			t.Errorf("sentence %d tags: %v, want %v", i, got.Sentences[i].Tags, c.Sentences[i].Tags)
		}
	}
	if len(got.Alternatives["S2"]) != 1 {
		t.Errorf("alternatives lost: %v", got.Alternatives)
	}
}

func TestWriteDirNoAlternatives(t *testing.T) {
	c := New()
	c.Sentences = append(c.Sentences, makeSentence("the LNK gene", []Tag{O, B, O}))
	c.Sentences[0].ID = "S1"
	dir := t.TempDir()
	if err := c.WriteDir(dir, "test"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDir(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Alternatives) != 0 {
		t.Error("phantom alternatives")
	}
}

func TestReadDirMissing(t *testing.T) {
	if _, err := ReadDir(t.TempDir(), "none"); err == nil {
		t.Error("want error for missing files")
	}
}
