package experiments

import (
	"os"
	"testing"

	"repro/internal/corpus/synth"
	"repro/internal/crf"
	"repro/internal/sigf"
)

// tiny is a unit-test scale: seconds, not minutes.
var tiny = Scale{
	Name: "tiny", Sentences: 1300, CRFIterations: 30, CRFOrder: crf.Order1,
	NeuralEpochs: 10, NeuralSentences: 600, SigfRepetitions: 300,
	BrownClusters: 8, BrownMaxWords: 250, W2VDim: 8,
}

func testEnv(t *testing.T) *Env {
	t.Helper()
	var log *os.File
	if testing.Verbose() {
		log = os.Stderr
	}
	if log != nil {
		return NewEnv(tiny, 11, log)
	}
	return NewEnv(tiny, 11, nil)
}

func TestCorporaCachedAndSized(t *testing.T) {
	e := testEnv(t)
	tr1, te1 := e.Corpora(synth.BC2GM)
	tr2, te2 := e.Corpora(synth.BC2GM)
	if tr1 != tr2 || te1 != te2 {
		t.Error("corpora not cached")
	}
	if len(tr1.Sentences)+len(te1.Sentences) != tiny.Sentences {
		t.Errorf("total %d sentences", len(tr1.Sentences)+len(te1.Sentences))
	}
	if len(tr1.Sentences) <= len(te1.Sentences) {
		t.Error("train should exceed test")
	}
}

func TestClasserLearned(t *testing.T) {
	if testing.Short() {
		t.Skip("trains distributional features")
	}
	e := testEnv(t)
	c, err := e.Classer(synth.AML)
	if err != nil {
		t.Fatal(err)
	}
	// A frequent corpus word must receive at least one class feature.
	if len(c.Classes("mutations")) == 0 {
		t.Error("no classes for a frequent word")
	}
	// Cached on second call.
	c2, err := e.Classer(synth.AML)
	if err != nil {
		t.Fatal(err)
	}
	if &c == &c2 {
		// pointer comparison of interfaces is not meaningful; just ensure
		// no retraining crash
		t.Log("classer cached")
	}
}

func TestTable1ShapeAndHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	e := testEnv(t)
	tab, err := e.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("got %d rows, want 6:\n%s", len(tab.Rows), tab)
	}
	t.Logf("\n%s", tab)
	find := func(method string) *Row {
		for i := range tab.Rows {
			if tab.Rows[i].Method == method {
				return &tab.Rows[i]
			}
		}
		t.Fatalf("row %q missing", method)
		return nil
	}
	banner := find("BANNER")
	gnBanner := find("CRF=BANNER")
	// Headline claim (relaxed for the tiny scale): GraphNER does not fall
	// below its base CRF by more than a point of F, and every system is
	// plausibly functional.
	for _, r := range tab.Rows {
		if r.Metrics.F1 <= 0.1 {
			t.Errorf("%s implausibly weak: %v", r.Method, r.Metrics)
		}
	}
	if gnBanner.Metrics.F1 < banner.Metrics.F1-0.02 {
		t.Errorf("GraphNER F %.4f well below baseline %.4f", gnBanner.Metrics.F1, banner.Metrics.F1)
	}
}

func TestTable5PValuesInRange(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	e := testEnv(t)
	hs, err := e.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 8 {
		t.Fatalf("got %d hypotheses, want 8", len(hs))
	}
	for _, h := range hs {
		if h.PValue <= 0 || h.PValue > 1 {
			t.Errorf("p-value %g out of range for %q", h.PValue, h.Null)
		}
	}
	if FormatHypotheses(hs) == "" {
		t.Error("empty render")
	}
}

func TestGraphStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	e := testEnv(t)
	st, err := e.GraphStatistics(synth.BC2GM)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vertices == 0 || st.Edges == 0 {
		t.Fatal("degenerate graph")
	}
	if st.Edges > st.K*st.Vertices {
		t.Errorf("edges %d exceed K·V = %d", st.Edges, st.K*st.Vertices)
	}
	if st.LabelledFraction <= 0 || st.LabelledFraction > 1 {
		t.Errorf("labelled fraction %g", st.LabelledFraction)
	}
	if st.PositiveFraction >= st.LabelledFraction {
		t.Error("positive fraction must be below labelled fraction")
	}
	if st.SerializedBytes == 0 {
		t.Error("zero serialized size")
	}
	if FormatGraphStats(st) == "" {
		t.Error("empty render")
	}
}

func TestFigure3Histograms(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	e := testEnv(t)
	rep, err := e.Figure3(synth.BC2GM)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range rep.Influencees.Counts {
		sum += c
	}
	g, _ := e.Graph(synth.BC2GM, BANNER)
	if sum != g.NumVertices() {
		t.Errorf("histogram covers %d vertices of %d", sum, g.NumVertices())
	}
}

func TestUpsetFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	e := testEnv(t)
	rep, err := e.UpsetFigure(synth.BC2GM)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("got %d upset rows", len(rep.Rows))
	}
	if rep.PValue <= 0 || rep.PValue > 1 {
		t.Errorf("chi-square p = %g", rep.PValue)
	}
	if rep.Rendered == "" {
		t.Error("empty render")
	}
}

func TestFigure2Timing(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	e := testEnv(t)
	pts, err := e.Figure2([]int{7, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.BaselineTrainTest.Mean <= 0 || p.GraphNERTrainTest.Mean <= 0 {
			t.Error("non-positive timing")
		}
		// GraphNER's train+test includes everything the baseline does plus
		// the propagation pipeline, so it must not be faster by a wide
		// margin (clock noise allowed).
		if p.GraphNERTrainTest.Mean < p.BaselineTrainTest.Mean/2 {
			t.Errorf("ratio %s: GraphNER %v implausibly below baseline %v",
				p.Ratio, p.GraphNERTrainTest.Mean, p.BaselineTrainTest.Mean)
		}
	}
	if FormatFigure2(pts) == "" {
		t.Error("empty render")
	}
}

func TestTable4CVGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	e := testEnv(t)
	grid, err := e.Table4(synth.BC2GM, BANNER, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 3*2*2*2 {
		t.Fatalf("grid size %d", len(grid))
	}
	for i := 1; i < len(grid); i++ {
		if grid[i-1].F1 < grid[i].F1 {
			t.Fatal("grid not sorted by F1")
		}
	}
}

func TestAbundantUnlabelled(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	e := testEnv(t)
	res, err := e.AbundantUnlabelled(synth.BC2GM, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.VerticesExtra <= res.VerticesPlain {
		t.Errorf("extra data did not grow the graph: %d vs %d", res.VerticesExtra, res.VerticesPlain)
	}
	for _, m := range []struct {
		name string
		f    float64
	}{{"baseline", res.Baseline.F1}, {"transductive", res.Transductive.F1}, {"withExtra", res.WithExtra.F1}} {
		if m.f <= 0.3 {
			t.Errorf("%s implausibly weak: %g", m.name, m.f)
		}
	}
}

func TestScoreValidates(t *testing.T) {
	e := testEnv(t)
	_, test := e.Corpora(synth.AML)
	if _, err := Score(test, nil); err == nil {
		t.Error("want error for missing tags")
	}
}

var _ = sigf.FScore // keep import in smoke builds
