package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/graphner"
	"repro/internal/stats"
)

// TimingPoint is one train:test ratio measurement of Figure 2.
type TimingPoint struct {
	Ratio             string // e.g. "9:1"
	TrainSentences    int
	TestSentences     int
	BaselineTrainTest stats.Timing // CRF train + Viterbi test
	GraphNERTrainTest stats.Timing // CRF train + full Algorithm-1 test
	GraphConstruction stats.Timing // measured separately, as in the paper
}

// Figure2 measures the wall-clock cost of train+test for the base CRF
// alone versus GraphNER, across train:test split ratios of the BC2GM
// corpus, with reps repetitions per ratio (the paper uses 10). Graph
// construction is timed separately: the paper's Figure 2 reports the
// train/test procedures, with construction treated as preprocessing.
func (e *Env) Figure2(ratios []int, reps int) ([]TimingPoint, error) {
	if len(ratios) == 0 {
		ratios = []int{9, 7, 5, 3, 1}
	}
	if reps <= 0 {
		reps = 3
	}
	train, test := e.Corpora(synth.BC2GM)
	all := corpus.New()
	all.Sentences = append(append([]*corpus.Sentence{}, train.Sentences...), test.Sentences...)

	cfg, err := e.GraphNERConfig(synth.BC2GM, BANNER)
	if err != nil {
		return nil, err
	}

	var out []TimingPoint
	for _, r := range ratios {
		nTrain := len(all.Sentences) * r / 10
		tr, te := all.Split(nTrain)
		pt := TimingPoint{
			Ratio:          fmt.Sprintf("%d:%d", r, 10-r),
			TrainSentences: len(tr.Sentences),
			TestSentences:  len(te.Sentences),
		}
		var baseT, gnT, graphT []time.Duration
		for rep := 0; rep < reps; rep++ {
			e.logf("[%s] Figure 2: ratio %s rep %d/%d", e.Scale.Name, pt.Ratio, rep+1, reps)
			// Baseline: CRF train + Viterbi decode.
			t0 := time.Now()
			sys, err := graphner.Train(tr, cfg)
			if err != nil {
				return nil, err
			}
			sys.BaselineTags(te)
			baseT = append(baseT, time.Since(t0))

			// Graph construction (preprocessing).
			t1 := time.Now()
			g, err := sys.BuildGraph(te)
			if err != nil {
				return nil, err
			}
			graphT = append(graphT, time.Since(t1))

			// GraphNER: CRF train + full TEST procedure (graph reused).
			t2 := time.Now()
			sys2, err := graphner.Train(tr, cfg)
			if err != nil {
				return nil, err
			}
			if _, err := sys2.TestWithGraph(te, g); err != nil {
				return nil, err
			}
			gnT = append(gnT, time.Since(t2))
		}
		pt.BaselineTrainTest = stats.Summarize(baseT)
		pt.GraphNERTrainTest = stats.Summarize(gnT)
		pt.GraphConstruction = stats.Summarize(graphT)
		out = append(out, pt)
	}
	return out, nil
}

// FormatFigure2 renders the timing series.
func FormatFigure2(points []TimingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %8s %16s %16s %16s\n",
		"ratio", "train", "test", "CRF train+test", "GraphNER t+t", "graph constr.")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6s %8d %8d %16v %16v %16v\n",
			p.Ratio, p.TrainSentences, p.TestSentences,
			p.BaselineTrainTest.Mean.Round(time.Millisecond),
			p.GraphNERTrainTest.Mean.Round(time.Millisecond),
			p.GraphConstruction.Mean.Round(time.Millisecond))
	}
	return b.String()
}

// InfluenceReport is Figure 3: histograms of Influence(v) and
// |Influencees(v)| over the all-features graph.
type InfluenceReport struct {
	Influence   graph.Histogram
	Influencees graph.Histogram
}

// Figure3 computes the influence histograms for a profile's all-features
// graph.
func (e *Env) Figure3(p synth.Profile) (*InfluenceReport, error) {
	g, err := e.Graph(p, BANNER)
	if err != nil {
		return nil, err
	}
	st := g.Influences()
	infl := make([]float64, len(st.Influencees))
	for i, v := range st.Influencees {
		infl[i] = float64(v)
	}
	return &InfluenceReport{
		Influence:   graph.LogHistogram(st.Influence, 12),
		Influencees: graph.LogHistogram(infl, 12),
	}, nil
}

// UpsetReport is Figures 4 and 5: the false-positive intersection table
// between GraphNER and BANNER-ChemDNER plus the chi-square test on the
// proportion of gene-related false positives.
type UpsetReport struct {
	Rows []eval.UpsetRow
	// GraphNER / baseline gene-related vs spurious FP counts.
	GNGene, GNSpurious     int
	BaseGene, BaseSpurious int
	Chi2, PValue           float64
	Rendered               string
}

// UpsetFigure computes the report for a profile (Figure 4 = AML, Figure 5
// = BC2GM).
func (e *Env) UpsetFigure(p synth.Profile) (*UpsetReport, error) {
	baseline, gnr, _, err := e.systemPair(p, ChemDNER)
	if err != nil {
		return nil, err
	}
	gen := e.Generator(p)
	var surfaces []string
	for _, ge := range gen.Genes() {
		surfaces = append(surfaces, ge.Symbol)
		if ge.FullName != nil {
			surfaces = append(surfaces, strings.Join(ge.FullName, " "))
		}
		surfaces = append(surfaces, ge.Variants...)
	}
	cat := eval.NewCategorizer(surfaces)

	rep := &UpsetReport{Rows: eval.Upset(gnr, baseline, cat)}
	for _, m := range eval.FalsePositiveSets(gnr) {
		if cat.Categorize(m) == eval.GeneRelated {
			rep.GNGene++
		} else {
			rep.GNSpurious++
		}
	}
	for _, m := range eval.FalsePositiveSets(baseline) {
		if cat.Categorize(m) == eval.GeneRelated {
			rep.BaseGene++
		} else {
			rep.BaseSpurious++
		}
	}
	gnTotal := rep.GNGene + rep.GNSpurious
	baseTotal := rep.BaseGene + rep.BaseSpurious
	if gnTotal > 0 && baseTotal > 0 {
		chi2, pv, err := stats.ChiSquareProportions(rep.GNGene, gnTotal, rep.BaseGene, baseTotal)
		if err != nil {
			return nil, err
		}
		rep.Chi2, rep.PValue = chi2, pv
	} else {
		rep.PValue = 1
	}
	rep.Rendered = eval.FormatUpset(rep.Rows, "GraphNER", "BANNER-ChemDNER")
	return rep, nil
}

// AbundantResult compares GraphNER with and without extra unlabelled data
// — the setting the paper's conclusion expects to raise performance ("we
// expect even higher performance when the tool is provided abundant
// unlabelled data").
type AbundantResult struct {
	Baseline, Transductive, WithExtra eval.Metrics
	ExtraSentences                    int
	VerticesPlain, VerticesExtra      int
}

// AbundantUnlabelled runs the extension experiment on a profile: an extra
// unlabelled corpus (a fresh sample from the same generator distribution)
// joins graph construction and posterior averaging.
func (e *Env) AbundantUnlabelled(p synth.Profile, extraSentences int) (*AbundantResult, error) {
	sys, err := e.System(p, BANNER)
	if err != nil {
		return nil, err
	}
	_, test := e.Corpora(p)
	cfg := synth.DefaultConfig(p, e.Seed+1000) // disjoint sample
	cfg.Sentences = extraSentences
	extra := synth.NewGenerator(cfg).Generate().StripLabels()

	e.logf("[%s] abundant-unlabelled: plain transductive pass on %s", e.Scale.Name, p)
	plain, err := sys.Test(test)
	if err != nil {
		return nil, err
	}
	e.logf("[%s] abundant-unlabelled: +%d extra sentences", e.Scale.Name, extraSentences)
	more, err := sys.TestWithExtra(test, extra)
	if err != nil {
		return nil, err
	}
	baseRes, err := Score(test, plain.BaselineTags)
	if err != nil {
		return nil, err
	}
	plainRes, err := Score(test, plain.Tags)
	if err != nil {
		return nil, err
	}
	moreRes, err := Score(test, more.Tags)
	if err != nil {
		return nil, err
	}
	return &AbundantResult{
		Baseline:       baseRes.Metrics(),
		Transductive:   plainRes.Metrics(),
		WithExtra:      moreRes.Metrics(),
		ExtraSentences: extraSentences,
		VerticesPlain:  plain.Graph.NumVertices(),
		VerticesExtra:  more.Graph.NumVertices(),
	}, nil
}

// GraphStats reproduces §III-D: vertex counts, labelled and positive
// fractions, edge identity |E| = K·|V|, and weak connectivity.
type GraphStats struct {
	Profile          synth.Profile
	Vertices, Edges  int
	K                int
	LabelledFraction float64
	PositiveFraction float64
	WeaklyConnected  bool
	SerializedBytes  int64
}

// GraphStatistics computes the §III-D statistics for a profile, reusing
// the cached GraphNER system and graph.
func (e *Env) GraphStatistics(p synth.Profile) (*GraphStats, error) {
	sys, err := e.System(p, BANNER)
	if err != nil {
		return nil, err
	}
	g, err := e.Graph(p, BANNER)
	if err != nil {
		return nil, err
	}
	_ = sys
	train, _ := e.Corpora(p)
	return graphStatsFor(p, g, train)
}

// GraphStatisticsOnly computes the §III-D statistics without training any
// CRF: graph construction in All-features mode needs only the feature
// extractor, so the full-corpus-size statistics (the paper's 406 179 /
// 348 683 vertex counts) are reachable at a fraction of the cost of a
// full reproduction run.
func (e *Env) GraphStatisticsOnly(p synth.Profile) (*GraphStats, error) {
	train, test := e.Corpora(p)
	union := corpus.New()
	union.Sentences = append(append([]*corpus.Sentence{}, train.Sentences...), test.Sentences...)
	e.logf("[%s] building all-features graph for %s (%d sentences, stats only)",
		e.Scale.Name, p, len(union.Sentences))
	g, err := graph.Build(union, graph.BuilderConfig{K: 10, MaxDF: 2000})
	if err != nil {
		return nil, err
	}
	return graphStatsFor(p, g, train)
}

func graphStatsFor(p synth.Profile, g *graph.Graph, train *corpus.Corpus) (*GraphStats, error) {
	refs := graphner.ReferenceDistributions(train)
	labelled, positive := 0, 0
	for _, v := range g.Vertices {
		if d, ok := refs[v]; ok {
			labelled++
			if d[corpus.B]+d[corpus.I] > 0 {
				positive++
			}
		}
	}
	size, err := g.WriteTo(discardCounter{})
	if err != nil {
		return nil, err
	}
	st := &GraphStats{
		Profile:         p,
		Vertices:        g.NumVertices(),
		Edges:           g.NumEdges(),
		K:               g.K,
		WeaklyConnected: g.WeaklyConnected(),
		SerializedBytes: size,
	}
	if st.Vertices > 0 {
		st.LabelledFraction = float64(labelled) / float64(st.Vertices)
		st.PositiveFraction = float64(positive) / float64(st.Vertices)
	}
	return st, nil
}

// discardCounter is an io.Writer that only counts.
type discardCounter struct{}

func (discardCounter) Write(p []byte) (int, error) { return len(p), nil }

// FormatGraphStats renders §III-D statistics.
func FormatGraphStats(st *GraphStats) string {
	return fmt.Sprintf(
		"%s all-features graph: %d vertices, %d edges (K=%d), %.1f%% labelled, %.2f%% positive, weakly connected=%v, serialized=%.1f MB",
		st.Profile, st.Vertices, st.Edges, st.K,
		100*st.LabelledFraction, 100*st.PositiveFraction,
		st.WeaklyConnected, float64(st.SerializedBytes)/1e6)
}
