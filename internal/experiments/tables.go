package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/graphner"
	"repro/internal/neural"
	"repro/internal/sigf"
)

// Row is one system's line in a results table.
type Row struct {
	Category string
	Method   string
	Metrics  eval.Metrics
	// Result carries the per-sentence outcomes for significance testing
	// and error analysis; nil for rows that only report aggregate scores.
	Result *eval.Result
}

// Table is a rendered experiment: rows plus free-form notes.
type Table struct {
	Title string
	Rows  []Row
	Notes []string
}

// String renders the table in the paper's layout.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-16s %-36s %10s %10s %10s\n", "Category", "Method", "Precision", "Recall", "F-Score")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-16s %-36s %9.2f%% %9.2f%% %9.2f%%\n",
			r.Category, r.Method, 100*r.Metrics.Precision, 100*r.Metrics.Recall, 100*r.Metrics.F1)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// systemPair evaluates a base CRF and GraphNER on top of it, reusing the
// cached graph.
func (e *Env) systemPair(p synth.Profile, b Base) (baseline, gnr *eval.Result, out *graphner.Output, err error) {
	sys, err := e.System(p, b)
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := e.Graph(p, b)
	if err != nil {
		return nil, nil, nil, err
	}
	_, test := e.Corpora(p)
	e.logf("[%s] running GraphNER(%s) on %s", e.Scale.Name, b, p)
	out, err = sys.TestWithGraph(test, g)
	if err != nil {
		return nil, nil, nil, err
	}
	baseline, err = Score(test, out.BaselineTags)
	if err != nil {
		return nil, nil, nil, err
	}
	gnr, err = Score(test, out.Tags)
	if err != nil {
		return nil, nil, nil, err
	}
	return baseline, gnr, out, nil
}

// resultsTable builds the Table I / Table II layout for a profile.
func (e *Env) resultsTable(p synth.Profile, title string) (*Table, error) {
	t := &Table{Title: title}

	// Neural comparison rows.
	for _, arch := range []neural.Arch{neural.LSTMCRF, neural.CharAttention} {
		res, err := e.NeuralBaseline(p, arch)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Category: "Neural", Method: arch.String(),
			Metrics: res.Metrics(), Result: res,
		})
	}

	// Base CRFs and GraphNER on each.
	for _, b := range []Base{BANNER, ChemDNER} {
		baseline, gnr, _, err := e.systemPair(p, b)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Category: "Baselines", Method: b.String(),
			Metrics: baseline.Metrics(), Result: baseline,
		})
		t.Rows = append(t.Rows, Row{
			Category: "GraphNER", Method: "CRF=" + b.String(),
			Metrics: gnr.Metrics(), Result: gnr,
		})
	}
	return t, nil
}

// Table1 reproduces "Results on the BC2GM corpus".
func (e *Env) Table1() (*Table, error) {
	return e.resultsTable(synth.BC2GM, "Table I — results on the BC2GM-profile corpus")
}

// Table2 reproduces "Results on the AML corpus".
func (e *Env) Table2() (*Table, error) {
	return e.resultsTable(synth.AML, "Table II — results on the AML-profile corpus")
}

// Table3 reproduces the feature-set ablation for graph construction:
// All-features vs Lexical-features vs MI thresholds, and K=10 vs K=5.
func (e *Env) Table3() (*Table, error) {
	t := &Table{Title: "Table III — effect of vertex feature sets and K on BC2GM"}
	_, test := e.Corpora(synth.BC2GM)

	type variant struct {
		name string
		mode graph.FeatureMode
		mi   float64
		k    int
	}
	variants := []variant{
		{"All-features", graph.AllFeatures, 0, 10},
		{"Lexical-features", graph.LexicalFeatures, 0, 10},
		{"MI > 0.002", graph.MIFeatures, 0.002, 10},
		{"MI > 0.005", graph.MIFeatures, 0.005, 10},
		{"MI > 0.01", graph.MIFeatures, 0.01, 10},
		{"All-features (K=5)", graph.AllFeatures, 0, 5},
	}
	for _, b := range []Base{BANNER, ChemDNER} {
		sys, err := e.System(synth.BC2GM, b)
		if err != nil {
			return nil, err
		}
		// Baseline row once per base model.
		baseRes, err := Score(test, sys.BaselineTags(test))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Category: "Baseline", Method: b.String(),
			Metrics: baseRes.Metrics(), Result: baseRes,
		})
		for _, v := range variants {
			cfg := sys.Config()
			cfg.Mode = v.mode
			cfg.MIThreshold = v.mi
			cfg.K = v.k
			vs := sys.WithConfig(cfg)
			e.logf("[%s] Table III: %s / %s", e.Scale.Name, b, v.name)
			g, err := vs.BuildGraph(test)
			if err != nil {
				return nil, err
			}
			out, err := vs.TestWithGraph(test, g)
			if err != nil {
				return nil, err
			}
			res, err := Score(test, out.Tags)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, Row{
				Category: "GraphNER", Method: fmt.Sprintf("%s / %s", b, v.name),
				Metrics: res.Metrics(), Result: res,
			})
		}
	}
	return t, nil
}

// CVResult is one hyper-parameter assignment with its cross-validated
// F-score.
type CVResult struct {
	Alpha, Mu, Nu float64
	Iterations    int
	F1            float64
}

// Table4 reproduces the cross-validation that chose the paper's Table IV
// hyper-parameters: a grid over (α, μ, ν, #iterations) scored by F on
// held-out folds of the training data.
func (e *Env) Table4(p synth.Profile, b Base, folds int) ([]CVResult, error) {
	if folds < 2 {
		folds = 3
	}
	train, _ := e.Corpora(p)
	cfg, err := e.GraphNERConfig(p, b)
	if err != nil {
		return nil, err
	}

	alphas := []float64{0.02, 0.1, 0.3}
	mus := []float64{1e-6, 1e-4}
	nus := []float64{1e-6, 1e-4}
	iters := []int{2, 3}

	var grid []CVResult
	for _, a := range alphas {
		for _, m := range mus {
			for _, n := range nus {
				for _, it := range iters {
					grid = append(grid, CVResult{Alpha: a, Mu: m, Nu: n, Iterations: it})
				}
			}
		}
	}

	per := len(train.Sentences) / folds
	sums := make([]float64, len(grid))
	for f := 0; f < folds; f++ {
		foldTest := corpus.New()
		foldTrain := corpus.New()
		for i, s := range train.Sentences {
			if i/per == f {
				foldTest.Sentences = append(foldTest.Sentences, s)
			} else {
				foldTrain.Sentences = append(foldTrain.Sentences, s)
			}
		}
		e.logf("[%s] Table IV: fold %d/%d (%d train / %d test)",
			e.Scale.Name, f+1, folds, len(foldTrain.Sentences), len(foldTest.Sentences))
		sys, err := graphner.Train(foldTrain, cfg)
		if err != nil {
			return nil, err
		}
		g, err := sys.BuildGraph(foldTest)
		if err != nil {
			return nil, err
		}
		for gi, cv := range grid {
			c2 := sys.Config()
			c2.Alpha, c2.Mu, c2.Nu, c2.Iterations = cv.Alpha, cv.Mu, cv.Nu, cv.Iterations
			out, err := sys.WithConfig(c2).TestWithGraph(foldTest, g)
			if err != nil {
				return nil, err
			}
			res, err := Score(foldTest, out.Tags)
			if err != nil {
				return nil, err
			}
			sums[gi] += res.Metrics().F1
		}
	}
	for i := range grid {
		grid[i].F1 = sums[i] / float64(folds)
	}
	sort.Slice(grid, func(i, j int) bool { return grid[i].F1 > grid[j].F1 })
	return grid, nil
}

// Hypothesis is one Table V row.
type Hypothesis struct {
	Null   string
	Metric sigf.Metric
	PValue float64
}

// Table5 reproduces the significance tests: the eight null hypotheses of
// Table V, tested with approximate randomization.
func (e *Env) Table5() ([]Hypothesis, error) {
	var out []Hypothesis
	test := func(p synth.Profile, b Base, metrics []sigf.Metric) error {
		baseline, gnr, _, err := e.systemPair(p, b)
		if err != nil {
			return err
		}
		for _, m := range metrics {
			r, err := sigf.Test(sigf.FromResults(baseline), sigf.FromResults(gnr), m,
				sigf.Options{Repetitions: e.Scale.SigfRepetitions, Seed: e.Seed})
			if err != nil {
				return err
			}
			out = append(out, Hypothesis{
				Null: fmt.Sprintf("%s and GraphNER with %s have the same %v on %s corpus",
					b, b, m, p),
				Metric: m,
				PValue: r.PValue,
			})
		}
		return nil
	}
	// BC2GM: F-score tests only (as in the paper's Table V).
	for _, b := range []Base{BANNER, ChemDNER} {
		if err := test(synth.BC2GM, b, []sigf.Metric{sigf.FScore}); err != nil {
			return nil, err
		}
	}
	// AML: F, recall and precision per base model.
	for _, b := range []Base{BANNER, ChemDNER} {
		if err := test(synth.AML, b, []sigf.Metric{sigf.FScore, sigf.Recall, sigf.Precision}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FormatHypotheses renders Table V.
func FormatHypotheses(hs []Hypothesis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-90s %10s\n", "null hypothesis", "p-value")
	for _, h := range hs {
		fmt.Fprintf(&b, "%-90s %10.4g\n", h.Null, h.PValue)
	}
	return b.String()
}
