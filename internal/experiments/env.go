// Package experiments drives the reproduction of every table and figure in
// the GraphNER paper's evaluation section over the synthetic substitute
// corpora. It is shared by cmd/benchtables (the end-to-end regeneration
// binary), the repository's testing.B benchmarks, and the examples. All
// heavyweight artifacts — corpora, trained CRFs, similarity graphs,
// distributional word classes — are built lazily and cached per (profile,
// scale, seed) inside an Env, so one process can regenerate several tables
// without retraining.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/brown"
	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/crf"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/graphner"
	"repro/internal/neural"
	"repro/internal/word2vec"
)

// Scale sets the cost/fidelity trade-off of a reproduction run.
type Scale struct {
	Name string
	// Sentences per corpus (train+test combined); 0 keeps the paper's
	// sizes (20 000 for BC2GM, 14 456 for AML).
	Sentences int
	// CRFIterations bounds base-CRF L-BFGS iterations.
	CRFIterations int
	// CRFOrder is the chain order of the base CRFs.
	CRFOrder crf.Order
	// NeuralEpochs bounds neural tagger training.
	NeuralEpochs int
	// NeuralSentences caps the training sentences of the neural rows
	// (they are by far the slowest systems); 0 means no cap.
	NeuralSentences int
	// SigfRepetitions for Table V.
	SigfRepetitions int
	// BrownClusters / BrownMaxWords / W2VDim size the distributional
	// features of the ChemDNER configuration.
	BrownClusters, BrownMaxWords, W2VDim int
	// MaxDF caps feature document frequency in k-NN candidate generation;
	// 0 keeps the search exact (affordable below ~10k sentences).
	MaxDF int
}

// Smoke is the continuous-integration scale: minutes, not hours.
var Smoke = Scale{
	Name: "smoke", Sentences: 1600, CRFIterations: 40, CRFOrder: crf.Order1,
	NeuralEpochs: 4, NeuralSentences: 800, SigfRepetitions: 2000,
	BrownClusters: 24, BrownMaxWords: 600, W2VDim: 16,
}

// Standard is the default scale of cmd/benchtables. Its corpus size is
// chosen so the supervised baselines sit at paper-comparable headroom
// (F around the low 90s, vs the paper's 84-87 on BC2GM): template-based
// synthetic corpora saturate the CRF at larger sizes, unlike real text
// (see EXPERIMENTS.md, "scale fidelity").
var Standard = Scale{
	Name: "standard", Sentences: 2500, CRFIterations: 40, CRFOrder: crf.Order1,
	NeuralEpochs: 8, NeuralSentences: 1800, SigfRepetitions: 10000,
	BrownClusters: 48, BrownMaxWords: 1500, W2VDim: 24,
}

// Full uses the paper's corpus sizes. NOTE: at these sizes the synthetic
// corpora are easier than the real BC2GM/AML data — the finite template
// grammar lets the supervised CRF approach its noise ceiling, shrinking
// the headroom GraphNER exploits. Full is provided for completeness and
// for the timing/statistics experiments; the difficulty-matched results
// are Standard's.
var Full = Scale{
	Name: "full", Sentences: 0, CRFIterations: 100, CRFOrder: crf.Order2,
	NeuralEpochs: 8, NeuralSentences: 5000, SigfRepetitions: 10000,
	BrownClusters: 64, BrownMaxWords: 2000, W2VDim: 32, MaxDF: 2000,
}

// Env caches the expensive artifacts of a reproduction run.
type Env struct {
	Scale Scale
	Seed  int64
	// Log receives progress lines; nil silences them.
	Log io.Writer

	corpora  map[synth.Profile]*corporaPair
	classers map[synth.Profile]features.WordClasser
	systems  map[systemKey]*graphner.System
	graphs   map[systemKey]*graph.Graph
	gens     map[synth.Profile]*synth.Generator
}

type corporaPair struct {
	train, test *corpus.Corpus
}

// Base identifies the base CRF configuration of a system row.
type Base int

// The two base models of the paper.
const (
	BANNER Base = iota
	ChemDNER
)

func (b Base) String() string {
	if b == ChemDNER {
		return "BANNER-ChemDNER"
	}
	return "BANNER"
}

type systemKey struct {
	profile synth.Profile
	base    Base
}

// NewEnv creates an experiment environment.
func NewEnv(scale Scale, seed int64, log io.Writer) *Env {
	return &Env{
		Scale: scale, Seed: seed, Log: log,
		corpora:  make(map[synth.Profile]*corporaPair),
		classers: make(map[synth.Profile]features.WordClasser),
		systems:  make(map[systemKey]*graphner.System),
		graphs:   make(map[systemKey]*graph.Graph),
		gens:     make(map[synth.Profile]*synth.Generator),
	}
}

func (e *Env) logf(format string, args ...any) {
	if e.Log != nil {
		fmt.Fprintf(e.Log, format+"\n", args...)
	}
}

// Corpora returns (building if necessary) the train/test pair for a
// profile at the environment's scale.
func (e *Env) Corpora(p synth.Profile) (train, test *corpus.Corpus) {
	if pair, ok := e.corpora[p]; ok {
		return pair.train, pair.test
	}
	cfg := synth.DefaultConfig(p, e.Seed)
	if e.Scale.Sentences > 0 {
		cfg.Sentences = e.Scale.Sentences
	}
	e.logf("[%s] generating %s corpus (%d sentences)", e.Scale.Name, p, cfg.Sentences)
	g := synth.NewGenerator(cfg)
	c := g.Generate()
	var nTrain int
	switch p {
	case synth.AML:
		nTrain = cfg.Sentences * 10504 / (10504 + 3952)
	default:
		nTrain = cfg.Sentences * 15000 / 20000
	}
	train, test = c.Split(nTrain)
	e.corpora[p] = &corporaPair{train, test}
	e.gens[p] = g
	return train, test
}

// Generator exposes the corpus generator (for the error categorizer's gene
// lexicon).
func (e *Env) Generator(p synth.Profile) *synth.Generator {
	e.Corpora(p)
	return e.gens[p]
}

// Classer returns the ChemDNER-style distributional word classes for a
// profile: Brown cluster paths and word2vec k-means clusters learned over
// the profile's full unlabelled text (train+test, labels ignored), exactly
// the semi-supervised feature construction of BANNER-ChemDNER.
func (e *Env) Classer(p synth.Profile) (features.WordClasser, error) {
	if c, ok := e.classers[p]; ok {
		return c, nil
	}
	train, test := e.Corpora(p)
	var sentences [][]string
	for _, s := range train.Sentences {
		sentences = append(sentences, s.Words())
	}
	for _, s := range test.Sentences {
		sentences = append(sentences, s.Words())
	}
	e.logf("[%s] learning Brown clusters for %s", e.Scale.Name, p)
	bc, err := brown.Cluster(sentences, brown.Config{
		NumClusters: e.Scale.BrownClusters,
		MaxWords:    e.Scale.BrownMaxWords,
		MinCount:    2,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: brown: %w", err)
	}
	e.logf("[%s] training word2vec for %s", e.Scale.Name, p)
	wv, err := word2vec.Train(sentences, word2vec.Config{
		Dim: e.Scale.W2VDim, Epochs: 3, MinCount: 2, Seed: e.Seed,
		Clusters: e.Scale.BrownClusters,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: word2vec: %w", err)
	}
	mc := features.MultiClasser{bc, wv}
	e.classers[p] = mc
	return mc, nil
}

// GraphNERConfig returns the configuration used for a profile/base pair,
// mirroring Table IV (hyper-parameters re-cross-validated for the
// synthetic substrate; see EXPERIMENTS.md).
func (e *Env) GraphNERConfig(p synth.Profile, b Base) (graphner.Config, error) {
	cfg := graphner.Default()
	cfg.Order = e.Scale.CRFOrder
	cfg.CRFIterations = e.Scale.CRFIterations
	// Prune very-high-document-frequency features from k-NN candidate
	// generation at scales where the exact search would be too costly
	// (see BenchmarkAblation_KNNMaxDF).
	cfg.MaxDF = e.Scale.MaxDF
	if b == ChemDNER {
		// Per-pair cross-validation (Table IV reproduction): the ChemDNER
		// base model's distributional features already generalize across
		// the corpus, so its CV prefers a much larger CRF share in the
		// mixture than BANNER's pairs do.
		cfg.Alpha = 0.8
		cfg.TransitionPower = 0.02
	}
	if b == ChemDNER {
		classer, err := e.Classer(p)
		if err != nil {
			return cfg, err
		}
		cfg.Extractor = features.NewExtractor(classer)
	}
	return cfg, nil
}

// System returns (training if necessary) the GraphNER system for a
// profile/base pair.
func (e *Env) System(p synth.Profile, b Base) (*graphner.System, error) {
	key := systemKey{p, b}
	if s, ok := e.systems[key]; ok {
		return s, nil
	}
	train, _ := e.Corpora(p)
	cfg, err := e.GraphNERConfig(p, b)
	if err != nil {
		return nil, err
	}
	e.logf("[%s] training %s base CRF on %s (%d sentences, order %d)",
		e.Scale.Name, b, p, len(train.Sentences), cfg.Order)
	sys, err := graphner.Train(train, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: training %s on %s: %w", b, p, err)
	}
	e.systems[key] = sys
	return sys, nil
}

// Graph returns (building if necessary) the all-features similarity graph
// for a profile/base pair.
func (e *Env) Graph(p synth.Profile, b Base) (*graph.Graph, error) {
	key := systemKey{p, b}
	if g, ok := e.graphs[key]; ok {
		return g, nil
	}
	sys, err := e.System(p, b)
	if err != nil {
		return nil, err
	}
	_, test := e.Corpora(p)
	e.logf("[%s] building %s similarity graph for %s", e.Scale.Name, b, p)
	g, err := sys.BuildGraph(test)
	if err != nil {
		return nil, fmt.Errorf("experiments: graph for %s/%s: %w", p, b, err)
	}
	e.graphs[key] = g
	return g, nil
}

// Score evaluates decoded tags against the test corpus.
func Score(test *corpus.Corpus, tags [][]corpus.Tag) (*eval.Result, error) {
	preds, err := eval.PredictionsFromTags(test, tags)
	if err != nil {
		return nil, err
	}
	return eval.Evaluate(test, preds)
}

// NeuralBaseline trains one of the neural comparison systems on the
// profile's training data (with a carved-out dev set, as the paper
// describes) and returns its evaluation on the test set.
func (e *Env) NeuralBaseline(p synth.Profile, arch neural.Arch) (*eval.Result, error) {
	train, test := e.Corpora(p)
	sents := train.Sentences
	if limit := e.Scale.NeuralSentences; limit > 0 && len(sents) > limit {
		sents = sents[:limit]
	}
	// The paper's split: 12000/3000 train/dev for BC2GM (80/20), 82%/18%
	// for AML.
	nDev := len(sents) / 5
	sub := corpus.New()
	sub.Sentences = sents[:len(sents)-nDev]
	dev := corpus.New()
	dev.Sentences = sents[len(sents)-nDev:]

	e.logf("[%s] training %v on %s (%d train / %d dev sentences)",
		e.Scale.Name, arch, p, len(sub.Sentences), len(dev.Sentences))
	tg, err := neural.TrainTagger(sub, dev, neural.TaggerConfig{
		Arch:        arch,
		Epochs:      e.Scale.NeuralEpochs,
		Rate:        3e-3,
		WordDropout: 0.05,
		Seed:        e.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %v on %s: %w", arch, p, err)
	}
	return Score(test, tg.TagCorpus(test))
}
