package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/sigf"
	"repro/internal/stats"
)

func TestTableString(t *testing.T) {
	tab := &Table{
		Title: "Table X",
		Rows: []Row{
			{Category: "Baselines", Method: "BANNER", Metrics: eval.Metrics{Precision: 0.9, Recall: 0.8, F1: 0.847}},
		},
		Notes: []string{"a note"},
	}
	out := tab.String()
	for _, want := range []string{"Table X", "BANNER", "90.00%", "80.00%", "84.70%", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHypotheses(t *testing.T) {
	out := FormatHypotheses([]Hypothesis{
		{Null: "A and B have the same F-score", Metric: sigf.FScore, PValue: 0.0123},
	})
	if !strings.Contains(out, "0.0123") || !strings.Contains(out, "same F-score") {
		t.Errorf("rendered hypotheses:\n%s", out)
	}
}

func TestFormatFigure2(t *testing.T) {
	pts := []TimingPoint{{
		Ratio: "7:3", TrainSentences: 700, TestSentences: 300,
		BaselineTrainTest: stats.Timing{N: 1, Mean: 2 * time.Second},
		GraphNERTrainTest: stats.Timing{N: 1, Mean: 3 * time.Second},
		GraphConstruction: stats.Timing{N: 1, Mean: 5 * time.Second},
	}}
	out := FormatFigure2(pts)
	for _, want := range []string{"7:3", "700", "300", "2s", "3s", "5s"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFormatGraphStatsContent(t *testing.T) {
	st := &GraphStats{
		Vertices: 1000, Edges: 10000, K: 10,
		LabelledFraction: 0.8, PositiveFraction: 0.1,
		WeaklyConnected: true, SerializedBytes: 2_000_000,
	}
	out := FormatGraphStats(st)
	for _, want := range []string{"1000 vertices", "10000 edges", "80.0% labelled", "10.00% positive", "2.0 MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered stats missing %q: %s", want, out)
		}
	}
}

func TestBaseString(t *testing.T) {
	if BANNER.String() != "BANNER" || ChemDNER.String() != "BANNER-ChemDNER" {
		t.Error("base names")
	}
}

func TestScalesAreOrdered(t *testing.T) {
	// Sanity: smoke ≤ standard in every cost dimension that matters.
	if Smoke.CRFIterations > Standard.CRFIterations && Smoke.Sentences > Standard.Sentences {
		t.Error("smoke scale costlier than standard")
	}
	if Full.Sentences != 0 {
		t.Error("full scale must use paper corpus sizes (Sentences=0)")
	}
	if Full.MaxDF == 0 {
		t.Error("full scale must cap document frequency for tractable k-NN")
	}
}
