// Package optimize provides the numerical optimizers used to train the
// models in this repository: L-BFGS with backtracking line search for the
// CRF's convex conditional log-likelihood, and SGD/Adam for the stochastic
// training of word embeddings and neural taggers. All optimizers minimize.
package optimize

import (
	"errors"
	"fmt"
	"math"
)

// Objective is a differentiable function handed to a batch optimizer.
type Objective interface {
	// Eval returns f(x) and writes the gradient ∇f(x) into grad, which has
	// the same length as x.
	Eval(x, grad []float64) float64
}

// LBFGSOptions configures LBFGS. Zero values select defaults.
type LBFGSOptions struct {
	// Memory is the number of (s, y) correction pairs kept (default 10).
	Memory int
	// MaxIterations bounds outer iterations (default 100).
	MaxIterations int
	// GradTol stops when the max-norm of the gradient falls below it
	// (default 1e-6).
	GradTol float64
	// FuncTol stops when the relative decrease of f between iterations
	// falls below it (default 1e-9).
	FuncTol float64
	// Callback, if non-nil, is invoked after every iteration with the
	// iteration number and current objective value; returning false stops
	// optimization early.
	Callback func(iter int, f float64) bool
}

func (o *LBFGSOptions) defaults() {
	if o.Memory <= 0 {
		o.Memory = 10
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-6
	}
	if o.FuncTol <= 0 {
		o.FuncTol = 1e-9
	}
}

// ErrLineSearch reports that the backtracking line search could not find a
// step satisfying the Armijo condition; x holds the best point found.
var ErrLineSearch = errors.New("optimize: line search failed")

// LBFGS minimizes obj starting from x in place and returns the final
// objective value. The limited-memory BFGS two-loop recursion builds the
// search direction; an Armijo backtracking line search chooses step sizes.
func LBFGS(obj Objective, x []float64, opts LBFGSOptions) (float64, error) {
	opts.defaults()
	n := len(x)
	grad := make([]float64, n)
	f := obj.Eval(x, grad)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return f, fmt.Errorf("optimize: objective is %v at start", f)
	}

	m := opts.Memory
	sHist := make([][]float64, 0, m) // x_{k+1} - x_k
	yHist := make([][]float64, 0, m) // g_{k+1} - g_k
	rhoHist := make([]float64, 0, m)

	dir := make([]float64, n)
	xNew := make([]float64, n)
	gradNew := make([]float64, n)
	alphaBuf := make([]float64, m)

	for iter := 0; iter < opts.MaxIterations; iter++ {
		if maxNorm(grad) < opts.GradTol {
			break
		}

		// Two-loop recursion: dir = -H·grad.
		copy(dir, grad)
		k := len(sHist)
		for i := k - 1; i >= 0; i-- {
			alphaBuf[i] = rhoHist[i] * dot(sHist[i], dir)
			axpy(-alphaBuf[i], yHist[i], dir)
		}
		if k > 0 {
			// Initial Hessian scaling γ = sᵀy / yᵀy.
			gamma := dot(sHist[k-1], yHist[k-1]) / dot(yHist[k-1], yHist[k-1])
			scale(gamma, dir)
		}
		for i := 0; i < k; i++ {
			beta := rhoHist[i] * dot(yHist[i], dir)
			axpy(alphaBuf[i]-beta, sHist[i], dir)
		}
		neg(dir)

		// Descent check; fall back to steepest descent if needed.
		dg := dot(dir, grad)
		if dg >= 0 {
			copy(dir, grad)
			neg(dir)
			dg = -dot(grad, grad)
			sHist, yHist, rhoHist = sHist[:0], yHist[:0], rhoHist[:0]
		}

		// Backtracking Armijo line search.
		step := 1.0
		if iter == 0 {
			if g := maxNorm(grad); g > 0 {
				step = math.Min(1.0, 1.0/g)
			}
		}
		const c1 = 1e-4
		var fNew float64
		ok := false
		for ls := 0; ls < 50; ls++ {
			for i := range x {
				xNew[i] = x[i] + step*dir[i]
			}
			fNew = obj.Eval(xNew, gradNew)
			if !math.IsNaN(fNew) && fNew <= f+c1*step*dg {
				ok = true
				break
			}
			step *= 0.5
		}
		if !ok {
			return f, ErrLineSearch
		}

		// Update correction history.
		s := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			s[i] = xNew[i] - x[i]
			y[i] = gradNew[i] - grad[i]
		}
		if sy := dot(s, y); sy > 1e-12 {
			if len(sHist) == m {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
		}

		rel := math.Abs(f-fNew) / math.Max(math.Abs(f), 1)
		copy(x, xNew)
		copy(grad, gradNew)
		f = fNew
		if opts.Callback != nil && !opts.Callback(iter, f) {
			break
		}
		if rel < opts.FuncTol {
			break
		}
	}
	return f, nil
}

// SGDOptions configures stochastic gradient descent with linear decay.
type SGDOptions struct {
	LearningRate float64 // initial step (default 0.1)
	FinalRate    float64 // step at the last update (default LearningRate/100)
	ClipNorm     float64 // per-update max gradient norm; 0 disables
}

// SGD holds SGD state for incremental updates. Callers drive it with
// Update per minibatch gradient.
type SGD struct {
	opts    SGDOptions
	step    int
	total   int
	currize float64
}

// NewSGD creates an SGD schedule over an expected totalUpdates updates.
func NewSGD(opts SGDOptions, totalUpdates int) *SGD {
	if opts.LearningRate <= 0 {
		opts.LearningRate = 0.1
	}
	if opts.FinalRate <= 0 {
		opts.FinalRate = opts.LearningRate / 100
	}
	if totalUpdates <= 0 {
		totalUpdates = 1
	}
	return &SGD{opts: opts, total: totalUpdates}
}

// Rate returns the current learning rate.
func (s *SGD) Rate() float64 {
	t := float64(s.step) / float64(s.total)
	if t > 1 {
		t = 1
	}
	return s.opts.LearningRate + t*(s.opts.FinalRate-s.opts.LearningRate)
}

// Update applies x ← x − rate·grad, with optional gradient-norm clipping,
// and advances the schedule.
func (s *SGD) Update(x, grad []float64) {
	rate := s.Rate()
	s.step++
	if s.opts.ClipNorm > 0 {
		if n := l2Norm(grad); n > s.opts.ClipNorm {
			scale(s.opts.ClipNorm/n, grad)
		}
	}
	axpy(-rate, grad, x)
}

// Adam implements the Adam optimizer (Kingma & Ba) for the neural models.
type Adam struct {
	Rate    float64 // default 1e-3
	Beta1   float64 // default 0.9
	Beta2   float64 // default 0.999
	Epsilon float64 // default 1e-8
	Clip    float64 // per-update max gradient norm; 0 disables

	m, v []float64
	t    int
}

// NewAdam returns an Adam optimizer for parameter vectors of length n.
func NewAdam(n int, rate float64) *Adam {
	if rate <= 0 {
		rate = 1e-3
	}
	return &Adam{
		Rate: rate, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: make([]float64, n), v: make([]float64, n),
	}
}

// UpdateAt applies one Adam step restricted to the given parameter
// indices ("lazy Adam"): moment estimates of untouched parameters are left
// stale rather than decayed. This is the standard optimization for models
// dominated by embedding tables, where each example touches only a few
// rows; it changes the trajectory slightly but not convergence in
// practice. Gradient clipping, if configured, is computed over the
// restricted index set.
func (a *Adam) UpdateAt(x, grad []float64, idx []int) {
	if len(x) != len(a.m) || len(grad) != len(a.m) {
		panic("optimize: Adam dimension mismatch")
	}
	if a.Clip > 0 {
		var n2 float64
		for _, i := range idx {
			n2 += grad[i] * grad[i]
		}
		if n := math.Sqrt(n2); n > a.Clip {
			s := a.Clip / n
			for _, i := range idx {
				grad[i] *= s
			}
		}
	}
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, i := range idx {
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*grad[i]
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*grad[i]*grad[i]
		mHat := a.m[i] / b1c
		vHat := a.v[i] / b2c
		x[i] -= a.Rate * mHat / (math.Sqrt(vHat) + a.Epsilon)
	}
}

// Update applies one Adam step to x given grad. Both must have the length
// the optimizer was created with.
func (a *Adam) Update(x, grad []float64) {
	if len(x) != len(a.m) || len(grad) != len(a.m) {
		panic("optimize: Adam dimension mismatch")
	}
	if a.Clip > 0 {
		if n := l2Norm(grad); n > a.Clip {
			scale(a.Clip/n, grad)
		}
	}
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range x {
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*grad[i]
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*grad[i]*grad[i]
		mHat := a.m[i] / b1c
		vHat := a.v[i] / b2c
		x[i] -= a.Rate * mHat / (math.Sqrt(vHat) + a.Epsilon)
	}
}

// Vector helpers.

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// axpy computes y ← y + α·x.
func axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

func scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

func neg(x []float64) {
	for i := range x {
		x[i] = -x[i]
	}
}

func maxNorm(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func l2Norm(x []float64) float64 {
	return math.Sqrt(dot(x, x))
}
