package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quadratic is f(x) = Σ c_i (x_i − t_i)² with minimum at t.
type quadratic struct {
	c, t []float64
}

func (q quadratic) Eval(x, grad []float64) float64 {
	var f float64
	for i := range x {
		d := x[i] - q.t[i]
		f += q.c[i] * d * d
		grad[i] = 2 * q.c[i] * d
	}
	return f
}

func TestLBFGSQuadratic(t *testing.T) {
	q := quadratic{c: []float64{1, 10, 0.5}, t: []float64{3, -2, 7}}
	x := []float64{0, 0, 0}
	f, err := LBFGS(q, x, LBFGSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if f > 1e-8 {
		t.Errorf("final f = %g", f)
	}
	for i := range x {
		if math.Abs(x[i]-q.t[i]) > 1e-4 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], q.t[i])
		}
	}
}

// rosenbrock is the classic banana function, a harder nonconvex test.
type rosenbrock struct{}

func (rosenbrock) Eval(x, grad []float64) float64 {
	a, b := x[0], x[1]
	f := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
	grad[0] = -2*(1-a) - 400*a*(b-a*a)
	grad[1] = 200 * (b - a*a)
	return f
}

func TestLBFGSRosenbrock(t *testing.T) {
	x := []float64{-1.2, 1}
	f, err := LBFGS(rosenbrock{}, x, LBFGSOptions{MaxIterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	if f > 1e-6 {
		t.Errorf("final f = %g at %v", f, x)
	}
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Errorf("x = %v, want (1,1)", x)
	}
}

func TestLBFGSRandomQuadratics(t *testing.T) {
	// Property: from any start, LBFGS recovers the minimizer of a strictly
	// convex separable quadratic.
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		q := quadratic{c: make([]float64, n), t: make([]float64, n)}
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			q.c[i] = 0.1 + 10*r.Float64()
			q.t[i] = r.NormFloat64() * 5
			x[i] = rng.NormFloat64() * 5
		}
		if _, err := LBFGS(q, x, LBFGSOptions{MaxIterations: 200}); err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-q.t[i]) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLBFGSCallbackStops(t *testing.T) {
	q := quadratic{c: []float64{1}, t: []float64{100}}
	x := []float64{0}
	iters := 0
	_, err := LBFGS(q, x, LBFGSOptions{Callback: func(i int, f float64) bool {
		iters++
		return false // stop immediately
	}})
	if err != nil {
		t.Fatal(err)
	}
	if iters != 1 {
		t.Errorf("callback called %d times, want 1", iters)
	}
}

func TestLBFGSNaNStart(t *testing.T) {
	q := quadratic{c: []float64{math.NaN()}, t: []float64{0}}
	if _, err := LBFGS(q, []float64{1}, LBFGSOptions{}); err == nil {
		t.Error("want error for NaN objective")
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize (x-5)² by SGD with exact gradients.
	x := []float64{0}
	g := []float64{0}
	s := NewSGD(SGDOptions{LearningRate: 0.3}, 200)
	for i := 0; i < 200; i++ {
		g[0] = 2 * (x[0] - 5)
		s.Update(x, g)
	}
	if math.Abs(x[0]-5) > 0.05 {
		t.Errorf("x = %g, want 5", x[0])
	}
}

func TestSGDRateDecays(t *testing.T) {
	s := NewSGD(SGDOptions{LearningRate: 1, FinalRate: 0.01}, 100)
	r0 := s.Rate()
	s.Update([]float64{0}, []float64{0})
	for i := 0; i < 99; i++ {
		s.Update([]float64{0}, []float64{0})
	}
	r1 := s.Rate()
	if r0 != 1 {
		t.Errorf("initial rate %g", r0)
	}
	if math.Abs(r1-0.01) > 1e-9 {
		t.Errorf("final rate %g, want 0.01", r1)
	}
}

func TestSGDClipping(t *testing.T) {
	s := NewSGD(SGDOptions{LearningRate: 1, ClipNorm: 1}, 10)
	x := []float64{0, 0}
	g := []float64{30, 40} // norm 50 -> clipped to 1
	s.Update(x, g)
	// After clipping, g = (0.6, 0.8); x = -rate*g = (-0.6, -0.8) with rate 1.
	if math.Abs(x[0]+0.6) > 1e-9 || math.Abs(x[1]+0.8) > 1e-9 {
		t.Errorf("x = %v", x)
	}
}

func TestAdamConverges(t *testing.T) {
	x := []float64{0, 0}
	g := []float64{0, 0}
	a := NewAdam(2, 0.05)
	for i := 0; i < 2000; i++ {
		g[0] = 2 * (x[0] - 3)
		g[1] = 2 * (x[1] + 4)
		a.Update(x, g)
	}
	if math.Abs(x[0]-3) > 0.01 || math.Abs(x[1]+4) > 0.01 {
		t.Errorf("x = %v, want (3,-4)", x)
	}
}

func TestAdamUpdateAtMatchesDenseOnFullIndexSet(t *testing.T) {
	// UpdateAt over all indices must equal Update exactly.
	n := 8
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	g := make([]float64, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
		x1[i] = float64(i)
		x2[i] = float64(i)
		g[i] = 0.1 * float64(i+1)
	}
	a1 := NewAdam(n, 0.01)
	a2 := NewAdam(n, 0.01)
	for step := 0; step < 5; step++ {
		g1 := append([]float64(nil), g...)
		g2 := append([]float64(nil), g...)
		a1.Update(x1, g1)
		a2.UpdateAt(x2, g2, idx)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-15 {
			t.Fatalf("x[%d]: dense %g vs sparse %g", i, x1[i], x2[i])
		}
	}
}

func TestAdamUpdateAtOnlyTouchesIndices(t *testing.T) {
	n := 6
	x := []float64{1, 2, 3, 4, 5, 6}
	g := []float64{1, 1, 1, 1, 1, 1}
	a := NewAdam(n, 0.1)
	a.UpdateAt(x, g, []int{1, 3})
	for i, orig := range []float64{1, 2, 3, 4, 5, 6} {
		changed := x[i] != orig
		want := i == 1 || i == 3
		if changed != want {
			t.Errorf("x[%d] changed=%v, want %v", i, changed, want)
		}
	}
}

func TestAdamUpdateAtClipsOverIndexSet(t *testing.T) {
	a := NewAdam(4, 1)
	a.Clip = 1
	x := make([]float64, 4)
	g := []float64{30, 40, 999, 999} // indices 0,1 only: norm 50 -> scale 0.02
	a.UpdateAt(x, g, []int{0, 1})
	if math.Abs(g[0]-0.6) > 1e-12 || math.Abs(g[1]-0.8) > 1e-12 {
		t.Errorf("clipped grads = %v", g[:2])
	}
	if g[2] != 999 {
		t.Error("untouched gradient was modified")
	}
}

func TestAdamDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewAdam(2, 0.1).Update([]float64{1}, []float64{1})
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if dot(a, b) != 32 {
		t.Error("dot")
	}
	y := []float64{1, 1, 1}
	axpy(2, a, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Errorf("axpy: %v", y)
	}
	if maxNorm([]float64{-5, 3}) != 5 {
		t.Error("maxNorm")
	}
	if math.Abs(l2Norm([]float64{3, 4})-5) > 1e-12 {
		t.Error("l2Norm")
	}
}

func BenchmarkLBFGSQuadratic100(b *testing.B) {
	n := 100
	q := quadratic{c: make([]float64, n), t: make([]float64, n)}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		q.c[i] = 0.5 + rng.Float64()
		q.t[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		if _, err := LBFGS(q, x, LBFGSOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
