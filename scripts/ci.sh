#!/bin/sh
# CI entry point: the tier-1 gate (build, lint, test, race) followed by a
# short fuzz smoke of each fuzz target. Run from anywhere; everything is
# stdlib + the go toolchain.
set -eu

cd "$(dirname "$0")/.."

echo "==> tier1 (build, lint, test, race)"
make tier1

echo "==> fuzz smoke"
make fuzz-smoke

echo "==> bench smoke"
make bench-smoke

echo "==> bench shard smoke"
make bench-shard-smoke

echo "==> bench serving smoke"
make bench-serving-smoke

echo "==> ci OK"
