#!/bin/sh
# CI entry point: the tier-1 gate (build, lint, test, race) followed by a
# short fuzz smoke of each fuzz target. Run from anywhere; everything is
# stdlib + the go toolchain.
set -eu

cd "$(dirname "$0")/.."

echo "==> tier1 (build, lint, test, race)"
make tier1

echo "==> lint gate (cold vs warm cache)"
# The lint suite must report zero findings, and the result cache must
# answer for an unchanged tree: time a cold run (cache wiped) and a warm
# one, and gate CI on the JSON output being the empty array both times.
# (`time` is a bash keyword, not a dash builtin, so measure with date.)
go build -o /tmp/graphnerlint-ci ./cmd/graphnerlint
elapsed_ms() {
    end=$(date +%s%N)
    echo "$(( (end - $1) / 1000000 ))"
}
# Exit 1 just means findings — defer to the JSON check below so the
# failure shows them; exit 2 (internal error) aborts immediately. Runs
# go through the lint ratchet (-baseline): the committed baseline is
# empty, so this is also the proof that the tree carries no waived debt.
lint_to() {
    rc=0
    /tmp/graphnerlint-ci -json -baseline lint-baseline.json ./... > "$1" || rc=$?
    [ "$rc" -le 1 ] || exit "$rc"
}
rm -rf .graphnerlint-cache
start=$(date +%s%N)
lint_to /tmp/lint-cold.json
echo "--- cold (cache wiped): $(elapsed_ms "$start") ms"
start=$(date +%s%N)
lint_to /tmp/lint-warm.json
echo "--- warm (cached):      $(elapsed_ms "$start") ms"
for f in /tmp/lint-cold.json /tmp/lint-warm.json; do
    if [ "$(cat "$f")" != "[]" ]; then
        echo "ci: lint findings in $f:" >&2
        cat "$f" >&2
        exit 1
    fi
done
# The ratchet must be at zero: -update-baseline on a clean tree rewrites
# the baseline as empty, so a non-empty committed file means someone
# waived findings instead of fixing them.
if [ "$(cat lint-baseline.json)" != "$(printf '{\n  "version": 1,\n  "findings": []\n}')" ]; then
    echo "ci: lint-baseline.json is not empty — pay down the waived findings" >&2
    cat lint-baseline.json >&2
    exit 1
fi
rm -f /tmp/graphnerlint-ci /tmp/lint-cold.json /tmp/lint-warm.json

echo "==> fuzz smoke"
make fuzz-smoke

echo "==> bench smoke"
make bench-smoke

echo "==> bench shard smoke"
make bench-shard-smoke

echo "==> bench lsh smoke"
make bench-lsh-smoke

echo "==> bench serving smoke"
make bench-serving-smoke

echo "==> ci OK"
