# Developer entry points. Everything is standard library + go toolchain;
# `make tier1` is the gate every change must pass.

GO ?= go

RACE_PKGS = ./internal/propagate ./internal/graph ./internal/crf ./internal/graphner ./internal/features

.PHONY: all build lint test race fuzz-smoke debug-test tier1

all: tier1

build:
	$(GO) build ./...

# The repo's own analyzer suite (internal/analysis): poolescape, maporder,
# floatcmp, naninf, ctxloop. Exits non-zero on findings.
lint: build
	$(GO) vet ./...
	$(GO) run ./cmd/graphnerlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# 10-second smoke of each fuzz target — catches shallow regressions
# without a long fuzzing budget.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzTokenize -fuzztime=10s ./internal/tokenize
	$(GO) test -run='^$$' -fuzz=FuzzCompileSentence -fuzztime=10s ./internal/crf

# Runtime assertions (internal/analysis/assert) compiled in: CSR shape,
# row-stochastic beliefs per sweep, NaN scans before Viterbi.
debug-test:
	$(GO) test -tags graphner_debug ./internal/analysis/assert ./internal/propagate ./internal/graph ./internal/graphner

tier1: build lint test race
