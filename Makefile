# Developer entry points. Everything is standard library + go toolchain;
# `make tier1` is the gate every change must pass.

GO ?= go

RACE_PKGS = ./internal/propagate ./internal/graph ./internal/crf ./internal/graphner ./internal/features ./internal/serving

.PHONY: all build lint lint-json lint-sarif lint-baseline test race fuzz-smoke bench-smoke bench-lint-smoke bench-shard-smoke bench-lsh-smoke bench-serving-smoke debug-test ci tier1

all: tier1

build:
	$(GO) build ./...

# The repo's own analyzer suite (internal/analysis): the syntactic checks
# (poolescape, maporder, floatcmp, naninf, ctxloop), the flow-sensitive
# concurrency checks (lockbalance, sharedwrite, atomicmix,
# waitgroupbalance), the interprocedural checks (poollife, lockatcall,
# determinism, errdrop), and the performance-contract checks (noalloc,
# nonblocking, baddirective — `//graphner:` directives enforced over the
# call graph) — graphnerlint runs everything analysis.All() returns, so
# new analyzers are picked up here without Makefile changes. Results are
# cached under .graphnerlint-cache/ keyed on file-content hashes plus the
# analyzer sources themselves; an unchanged tree re-lints in milliseconds.
# Exit codes: 0 no findings, 1 findings, 2 internal error.
lint: build
	$(GO) vet ./...
	$(GO) run ./cmd/graphnerlint ./...

# Ratcheted lint: findings recorded in lint-baseline.json are tolerated,
# anything new fails. `-update-baseline` rewrites the file but refuses to
# let any per-symbol count grow — the baseline only shrinks as debt is
# paid down. The committed baseline is empty; keep it that way.
lint-baseline: build
	$(GO) run ./cmd/graphnerlint -baseline lint-baseline.json ./...

# Same suite, machine-readable: a JSON array of
# {file,line,col,analyzer,message} on stdout for editor/CI integration.
lint-json: build
	$(GO) run ./cmd/graphnerlint -json ./...

# Same suite as a SARIF 2.1.0 log on stdout, for code-scanning uploads
# and annotation tooling. Same exit codes as lint.
lint-sarif: build
	$(GO) run ./cmd/graphnerlint -sarif ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# 10-second smoke of each fuzz target — catches shallow regressions
# without a long fuzzing budget — plus a deterministic pass over the
# interprocedural analyzer corpora (marker-checked buggy programs under
# internal/analysis/testdata).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzTokenize -fuzztime=10s ./internal/tokenize
	$(GO) test -run='^$$' -fuzz=FuzzCompileSentence -fuzztime=10s ./internal/crf
	$(GO) test -run 'TestPoolLife|TestLockAtCall|TestDeterminism|TestErrDrop|TestDiffRoundTrip' -count=1 ./internal/analysis ./cmd/graphnerlint

# Fast performance-regression gate (<30s): the incremental-maintenance
# smoke and golden tests, and the allocation guards on the propagation
# sweeps and pooled CRF decode paths (testing.AllocsPerRun bounds compiled
# into the tests themselves).
bench-smoke:
	$(GO) test -run 'TestIncrementalSmoke|TestKNNIncrementalOneBatchGolden|TestPatchCSRMatchesBuildCSR' -count=1 ./internal/graph
	$(GO) test -run 'TestSweepAllocGuard|TestWarmSweepAllocGuard' -count=1 ./internal/propagate
	$(GO) test -run 'TestDecodeAllocGuard|TestPosteriorsAllocGuard' -count=1 ./internal/crf

# Linter self-benchmark: cold and warm whole-module graphnerlint runs
# (wall time, packages analyzed, findings) written to BENCH_lint.json —
# a warm-time cliff here means the result cache broke.
bench-lint-smoke:
	$(GO) run ./cmd/benchtables -lint

# Sharded-path smoke (<2 s of test time): re-verifies that sharded k-NN
# construction and SPMD propagation with halo exchange are bit-identical
# to the single-index path on tiny corpora (shard counts up to 8,
# serialization round-trip included), plus the zero-alloc steady-state
# guard on the per-shard sweep.
bench-shard-smoke:
	$(GO) test -run 'TestShardedBuildMatchesBuild$$|TestShardGraphRoundTrip' -count=1 ./internal/graph
	$(GO) test -run 'TestRunShardedFlatMatchesRunFlat|TestRunShardedMatchesRun|TestShardedSweepAllocGuard' -count=1 ./internal/propagate

# LSH smoke (<2 s of test time): the recall floor gate for the banded-LSH
# builder across feature modes and K (recall@K >= 0.9 against the exact
# graph on a small corpus), the worker-count bit-identity check, and the
# zero-allocation guard on the steady-state candidate scan
# (testing.AllocsPerRun bound compiled into the test).
bench-lsh-smoke:
	$(GO) test -run 'TestLSHRecallRegression|TestLSHDeterministicAcrossWorkers|TestLSHCandidateAllocGuard' -count=1 ./internal/graph

# Serving smoke (<2 s of test time): in-process requests through the real
# batching server — the golden identity check (served tags == System.Test
# output), the p99 latency gate under a deliberately loose bound, and the
# zero-allocation warm-request guard.
bench-serving-smoke:
	$(GO) test -run 'TestServingGolden|TestServingSmoke|TestServingAllocGuard' -count=1 ./internal/serving

# Runtime assertions (internal/analysis/assert) compiled in: CSR shape,
# row-stochastic beliefs per sweep, NaN scans before Viterbi.
debug-test:
	$(GO) test -tags graphner_debug ./internal/analysis/assert ./internal/propagate ./internal/graph ./internal/graphner

# Full CI entry point: the tier-1 gate plus the fuzz smoke.
ci:
	scripts/ci.sh

tier1: build lint test race
