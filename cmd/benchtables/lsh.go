package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"repro/internal/corpus/synth"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/graphner"
)

// The acceptance gates BENCH_lsh.json records. The speedup and recall
// gates apply to the largest corpus size measured (the approximate
// builder exists for the growing end of the scaling curve; at small V
// the exact builder is already cheap and LSH overhead dominates). The
// F1 gate bounds the end-to-end accuracy cost of the recall the seed
// trades away after refinement.
const (
	lshGateSpeedup   = 3.0
	lshGateRecall    = 0.9
	lshGateF1Abs     = 0.01
	lshGateSentences = 1000 // gate applies from this corpus size up
)

// lshBench is one corpus-size row of BENCH_lsh.json: exact and LSH
// whole-build times over the identical corpus, the recall of the
// approximate neighbour lists against the exact ones, and the inline
// worker-count bit-identity check.
type lshBench struct {
	Sentences int `json:"sentences"`
	Vertices  int `json:"vertices"`
	Edges     int `json:"edges"`
	// ExactNsOp and LSHNsOp time graph.Build end to end (vectorization
	// + k-NN search) in the two modes on the same corpus.
	ExactNsOp float64 `json:"exact_ns_op"`
	LSHNsOp   float64 `json:"lsh_ns_op"`
	Speedup   float64 `json:"speedup"`
	// Recall is the fraction of exact k-NN edges the LSH graph
	// recovers (graph.Recall).
	Recall  float64 `json:"recall"`
	RecallK int     `json:"recall_k"`
	// BitIdentical records the inline determinism check: before timing,
	// the LSH graph was rebuilt with worker counts 1, 2, and 8 and each
	// result compared structurally bit-for-bit (Graph.Equal). The run
	// aborts on mismatch, so a written report always says true.
	BitIdentical bool `json:"bit_identical"`
	// GateApplies marks the rows the speedup/recall gate is evaluated
	// on (sentences ≥ lshGateSentences).
	GateApplies bool `json:"gate_applies"`
}

type lshReport struct {
	GeneratedBy string `json:"generated_by"`
	GoMaxProcs  int    `json:"go_max_procs"`
	// Config echoes the recommended setting under measurement (the
	// library defaults resolved at K=10).
	Config      graph.LSHConfig `json:"config"`
	K           int             `json:"k"`
	GateSpeedup float64         `json:"gate_speedup"`
	GateRecall  float64         `json:"gate_recall"`
	Benchmarks  []lshBench      `json:"benchmarks"`
	// SpeedupRecallGatePass: at the largest measured size, LSH
	// whole-build speedup ≥ GateSpeedup and recall ≥ GateRecall.
	SpeedupRecallGatePass bool `json:"speedup_recall_gate_pass"`
	// End-to-end accuracy gate: one TRAIN+TEST pipeline, tested with
	// the exact graph and the LSH graph; |F1 delta| must stay within
	// F1Tolerance.
	F1Sentences int     `json:"f1_sentences"`
	F1Exact     float64 `json:"f1_exact"`
	F1LSH       float64 `json:"f1_lsh"`
	F1Delta     float64 `json:"f1_delta"`
	F1Tolerance float64 `json:"f1_tolerance"`
	F1GatePass  bool    `json:"f1_gate_pass"`
}

// runLSH benchmarks the banded-LSH graph builder against the exact
// inverted-index builder at 250/500/1000/2000/4000 sentences (recall
// and worker-count bit-identity verified inline before any timing),
// runs the end-to-end accuracy gate, and writes BENCH_lsh.json.
func runLSH(outPath string, log *os.File) error {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	const K = 10
	var report lshReport
	report.GeneratedBy = "benchtables -lsh"
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.K = K
	report.GateSpeedup = lshGateSpeedup
	report.GateRecall = lshGateRecall
	// The recommended setting: the library defaults with a fixed seed.
	recommended := graph.LSHConfig{Seed: 1}
	report.Config = recommended

	for _, sentences := range []int{250, 500, 1000, 2000, 4000} {
		c := genShardCorpus(sentences)
		exactCfg := graph.BuilderConfig{K: K}
		lshCfg := graph.BuilderConfig{K: K, GraphMode: graph.ModeLSH, LSH: recommended}

		logf("sentences=%d: building exact reference graph...\n", sentences)
		want, err := graph.Build(c, exactCfg)
		if err != nil {
			return err
		}
		got, err := graph.Build(c, lshCfg)
		if err != nil {
			return err
		}
		recall := graph.Recall(want.Neighbors, got.Neighbors)

		// Worker-count bit-identity, before any timing counts.
		for _, w := range []int{1, 2, 8} {
			cfg := lshCfg
			cfg.Workers = w
			g, err := graph.Build(c, cfg)
			if err != nil {
				return err
			}
			if !g.Equal(got) {
				return fmt.Errorf("sentences=%d: LSH build with workers=%d is not bit-identical", sentences, w)
			}
		}

		row := lshBench{
			Sentences:    sentences,
			Vertices:     want.NumVertices(),
			Edges:        got.NumEdges(),
			Recall:       recall,
			RecallK:      K,
			BitIdentical: true,
			GateApplies:  sentences >= lshGateSentences,
		}
		logf("sentences=%d: timing exact build...\n", sentences)
		row.ExactNsOp = float64(testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.Build(c, exactCfg); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp())
		logf("sentences=%d: timing LSH build...\n", sentences)
		row.LSHNsOp = float64(testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.Build(c, lshCfg); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp())
		row.Speedup = row.ExactNsOp / row.LSHNsOp
		logf("sentences=%d vertices=%d: exact %.0f ns, lsh %.0f ns, speedup %.2fx, recall@%d %.3f\n",
			sentences, row.Vertices, row.ExactNsOp, row.LSHNsOp, row.Speedup, K, recall)
		report.Benchmarks = append(report.Benchmarks, row)
	}

	last := report.Benchmarks[len(report.Benchmarks)-1]
	report.SpeedupRecallGatePass = last.Speedup >= lshGateSpeedup && last.Recall >= lshGateRecall

	// End-to-end accuracy gate: one trained system, tested with the
	// exact graph and with the LSH graph.
	report.F1Sentences = 2000
	report.F1Tolerance = lshGateF1Abs
	scfg := synth.DefaultConfig(synth.BC2GM, 5)
	scfg.Sentences = report.F1Sentences
	train, test := synth.GenerateSplit(scfg)
	gcfg := graphner.Default()
	gcfg.CRFIterations = 40
	logf("accuracy gate: training base CRF (%d sentences)...\n", report.F1Sentences)
	sys, err := graphner.Train(train, gcfg)
	if err != nil {
		return err
	}
	f1 := func(s *graphner.System) (float64, error) {
		out, err := s.Test(test)
		if err != nil {
			return 0, err
		}
		preds, err := eval.PredictionsFromTags(test, out.Tags)
		if err != nil {
			return 0, err
		}
		res, err := eval.Evaluate(test, preds)
		if err != nil {
			return 0, err
		}
		return res.Metrics().F1, nil
	}
	logf("accuracy gate: TEST pass with the exact graph...\n")
	if report.F1Exact, err = f1(sys); err != nil {
		return err
	}
	lcfg := sys.Config()
	lcfg.GraphMode = graph.ModeLSH
	lcfg.LSH = recommended
	logf("accuracy gate: TEST pass with the LSH graph...\n")
	if report.F1LSH, err = f1(sys.WithConfig(lcfg)); err != nil {
		return err
	}
	report.F1Delta = report.F1LSH - report.F1Exact
	report.F1GatePass = math.Abs(report.F1Delta) <= report.F1Tolerance
	logf("accuracy gate: exact F1 %.4f, lsh F1 %.4f, delta %+.4f (tolerance %.3f)\n",
		report.F1Exact, report.F1LSH, report.F1Delta, report.F1Tolerance)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	logf("wrote %s\n", outPath)
	return nil
}
