package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/graph"
	"repro/internal/graphner"
	"repro/internal/propagate"
)

// hotpathBench is one measured hot-path workload in BENCH_hotpaths.json.
type hotpathBench struct {
	Name string `json:"name"`
	// GoMaxProcs is the scheduler width this benchmark ran under, and
	// Workers the worker count the kernel was configured with (0 = the
	// kernel's default, GOMAXPROCS). Recorded per benchmark: a single
	// top-level value cannot describe a worker sweep.
	GoMaxProcs int     `json:"go_max_procs"`
	Workers    int     `json:"workers,omitempty"`
	NsOp       float64 `json:"ns_op"`
	BOp        int64   `json:"b_op"`
	AllocsOp   int64   `json:"allocs_op"`
	// Seed* carry the same workload measured at the seed commit (pre
	// allocation-free hot paths), when a baseline is on record; zero
	// values mean no baseline. They keep the optimization trajectory
	// visible next to fresh numbers from `benchtables -hotpaths`.
	SeedNsOp     float64 `json:"seed_ns_op,omitempty"`
	SeedBOp      int64   `json:"seed_b_op,omitempty"`
	SeedAllocsOp int64   `json:"seed_allocs_op,omitempty"`
}

type hotpathReport struct {
	GeneratedBy string         `json:"generated_by"`
	GoMaxProcs  int            `json:"go_max_procs"`
	Benchmarks  []hotpathBench `json:"benchmarks"`
}

// seedBaseline holds `go test -bench Scaling -benchmem` results measured at
// the seed commit (bd97aa1) on the development machine (Xeon @ 2.10GHz),
// recorded when the allocation-free hot paths landed. Absent entries simply
// omit the seed fields from the report.
var seedBaseline = map[string][3]float64{ // name -> {ns/op, B/op, allocs/op}
	"Scaling_GraphConstruction/sentences=250":  {760720986, 24089124, 436763},
	"Scaling_GraphConstruction/sentences=500":  {2393390227, 43358312, 856034},
	"Scaling_GraphConstruction/sentences=1000": {6918688131, 79129832, 1636627},
	"Scaling_Propagation/iterations=1":         {2566359, 1011024, 10379},
	"Scaling_Propagation/iterations=2":         {3839380, 1011256, 10383},
	"Scaling_Propagation/iterations=4":         {6317860, 1011728, 10391},
	"Scaling_Propagation/iterations=8":         {11597893, 1012656, 10407},
}

// runHotpaths benchmarks the allocation-sensitive kernels — graph
// construction, propagation, reference-distribution extraction — via
// testing.Benchmark and writes a JSON report.
func runHotpaths(outPath string, log *os.File) error {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	var report hotpathReport
	report.GeneratedBy = "benchtables -hotpaths"
	report.GoMaxProcs = runtime.GOMAXPROCS(0)

	recordWorkers := func(name string, workers int, r testing.BenchmarkResult) {
		b := hotpathBench{
			Name:       name,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Workers:    workers,
			NsOp:       float64(r.NsPerOp()),
			BOp:        r.AllocedBytesPerOp(),
			AllocsOp:   r.AllocsPerOp(),
		}
		if s, ok := seedBaseline[name]; ok {
			b.SeedNsOp, b.SeedBOp, b.SeedAllocsOp = s[0], int64(s[1]), int64(s[2])
		}
		report.Benchmarks = append(report.Benchmarks, b)
		logf("%-50s %12.0f ns/op %12d B/op %10d allocs/op\n", name, b.NsOp, b.BOp, b.AllocsOp)
	}
	record := func(name string, r testing.BenchmarkResult) { recordWorkers(name, 0, r) }

	// Worker counts for the parallel-speedup sweeps: 1, 4, and all cores
	// (deduplicated when they coincide).
	workerSweep := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		if n > 4 {
			workerSweep = append(workerSweep, 4)
		}
		workerSweep = append(workerSweep, n)
	}

	genCorpus := func(sentences int) *corpus.Corpus {
		cfg := synth.DefaultConfig(synth.BC2GM, 5)
		cfg.Sentences = sentences
		return synth.NewGenerator(cfg).Generate()
	}

	// Graph construction across corpus sizes (the O(Nf + V²FK) claim).
	for _, n := range []int{250, 500, 1000} {
		c := genCorpus(n)
		name := fmt.Sprintf("Scaling_GraphConstruction/sentences=%d", n)
		logf("running %s...\n", name)
		record(name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graph.Build(c, graph.BuilderConfig{K: 10}); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Propagation across sweep counts (the O(V·K·#iterations) claim).
	{
		c := genCorpus(1000)
		g, err := graph.Build(c, graph.BuilderConfig{K: 10})
		if err != nil {
			return err
		}
		refs := graphner.ReferenceDistributions(c)
		xref := make([][]float64, g.NumVertices())
		labelled := make([]bool, g.NumVertices())
		for v, ng := range g.Vertices {
			if d, ok := refs[ng]; ok {
				xref[v], labelled[v] = d, true
			}
		}
		for _, iters := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("Scaling_Propagation/iterations=%d", iters)
			logf("running %s...\n", name)
			record(name, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					X := make([][]float64, g.NumVertices())
					if _, err := propagate.Run(g, X, xref, labelled, propagate.Config{
						Mu: 1e-6, Nu: 1e-6, Iterations: iters,
					}); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}

		// Parallel-speedup sweep over the same propagation workload.
		for _, w := range workerSweep {
			name := fmt.Sprintf("WorkerSweep_Propagation/workers=%d", w)
			logf("running %s...\n", name)
			recordWorkers(name, w, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					X := make([][]float64, g.NumVertices())
					if _, err := propagate.Run(g, X, xref, labelled, propagate.Config{
						Mu: 1e-6, Nu: 1e-6, Iterations: 4, Workers: w,
					}); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}

	// Parallel-speedup sweep for graph construction.
	{
		c := genCorpus(500)
		for _, w := range workerSweep {
			name := fmt.Sprintf("WorkerSweep_GraphConstruction/workers=%d", w)
			logf("running %s...\n", name)
			recordWorkers(name, w, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := graph.Build(c, graph.BuilderConfig{K: 10, Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}

	// Reference distributions across corpus sizes (the O(N_l + V_l) claim).
	for _, n := range []int{500, 1000, 2000} {
		c := genCorpus(n)
		name := fmt.Sprintf("Scaling_ReferenceDistributions/sentences=%d", n)
		logf("running %s...\n", name)
		record(name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graphner.ReferenceDistributions(c)
			}
		}))
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	logf("wrote %s\n", outPath)
	return nil
}
