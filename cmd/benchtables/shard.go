package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/graph"
	"repro/internal/graphner"
	"repro/internal/propagate"
)

// genShardCorpus mirrors the hotpaths corpus generator: same profile,
// same seed, so the shard sweep measures the exact workload behind the
// recorded baselines.
func genShardCorpus(sentences int) *corpus.Corpus {
	cfg := synth.DefaultConfig(synth.BC2GM, 5)
	cfg.Sentences = sentences
	return synth.NewGenerator(cfg).Generate()
}

// shardBench is one measured (shard count × worker count) cell in
// BENCH_shard.json.
type shardBench struct {
	Name       string  `json:"name"`
	GoMaxProcs int     `json:"go_max_procs"`
	Shards     int     `json:"shards"`
	Workers    int     `json:"workers"`
	NsOp       float64 `json:"ns_op"`
	BOp        int64   `json:"b_op"`
	AllocsOp   int64   `json:"allocs_op"`
	// BaselineNsOp carries the BENCH_hotpaths.json all-core number for
	// the same workload (1000-sentence construction, iterations=4
	// propagation with loss every sweep) — the bar the sharded path is
	// measured against. Zero means the workload has no recorded
	// baseline (the sweep-only propagation variant).
	BaselineNsOp float64 `json:"baseline_ns_op,omitempty"`
	// BitIdentical records the inline equivalence check: before timing,
	// the sharded output (assembled graph, or converged beliefs + loss
	// trajectory + max delta) was compared bit-for-bit against the
	// single-index path on the same inputs. The run aborts if the check
	// fails, so a written report always says true; the field keeps the
	// guarantee visible in the artifact.
	BitIdentical bool `json:"bit_identical"`
}

type shardReport struct {
	GeneratedBy string       `json:"generated_by"`
	GoMaxProcs  int          `json:"go_max_procs"`
	Sentences   int          `json:"sentences"`
	Benchmarks  []shardBench `json:"benchmarks"`
}

// Recorded BENCH_hotpaths.json baselines for the two workloads the shard
// sweep re-measures (GOMAXPROCS=1 on the development machine). They are
// embedded, like seedBaseline in hotpaths.go, so the report carries its
// own bar even when BENCH_hotpaths.json is regenerated.
const (
	baselineConstruction1000NsOp = 2625448271 // Scaling_GraphConstruction/sentences=1000
	baselinePropagationIter4NsOp = 6434281    // Scaling_Propagation/iterations=4
)

// runShard benchmarks postings-partitioned graph construction and the
// per-shard SPMD propagation sweep across shard counts S ∈ {1, 2, 4,
// GOMAXPROCS} × worker counts {1, 4, GOMAXPROCS} (deduplicated), with
// every measured configuration first verified bit-identical to the
// single-index path, and writes BENCH_shard.json.
func runShard(outPath string, log *os.File) error {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	var report shardReport
	report.GeneratedBy = "benchtables -shard"
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.Sentences = 1000

	record := func(name string, shards, workers int, baseline float64, r testing.BenchmarkResult) {
		b := shardBench{
			Name:         name,
			GoMaxProcs:   runtime.GOMAXPROCS(0),
			Shards:       shards,
			Workers:      workers,
			NsOp:         float64(r.NsPerOp()),
			BOp:          r.AllocedBytesPerOp(),
			AllocsOp:     r.AllocsPerOp(),
			BaselineNsOp: baseline,
			BitIdentical: true,
		}
		report.Benchmarks = append(report.Benchmarks, b)
		logf("%-55s %12.0f ns/op %12d B/op %10d allocs/op\n", name, b.NsOp, b.BOp, b.AllocsOp)
	}

	// Shard counts: 1 (the existing single-index path), 2, 4, and all
	// cores, deduplicated and kept ascending.
	shardSweep := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		shardSweep = append(shardSweep, n)
	}
	workerSweep := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		if n > 4 {
			workerSweep = append(workerSweep, 4)
		}
		workerSweep = append(workerSweep, n)
	}

	c := genShardCorpus(report.Sentences)

	// Single-index reference graph: every sharded build below must
	// assemble this exact graph before its timing counts.
	logf("building single-index reference graph (%d sentences)...\n", report.Sentences)
	want, err := graph.Build(c, graph.BuilderConfig{K: 10})
	if err != nil {
		return err
	}

	// Construction sweep.
	for _, s := range shardSweep {
		for _, w := range workerSweep {
			cfg := graph.BuilderConfig{K: 10, Workers: w, Shards: s}
			sg, err := graph.BuildSharded(c, cfg)
			if err != nil {
				return err
			}
			if !sg.Flat().Equal(want) {
				return fmt.Errorf("shards=%d workers=%d: sharded build is not bit-identical to the single-index graph", s, w)
			}
			name := fmt.Sprintf("ShardSweep_GraphConstruction/shards=%d/workers=%d", s, w)
			logf("running %s...\n", name)
			record(name, s, w, baselineConstruction1000NsOp, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := graph.BuildSharded(c, cfg); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}

	// Propagation sweep over the BENCH_hotpaths iterations=4 workload:
	// same graph, same reference distributions, Mu = Nu = 1e-6.
	refs := graphner.ReferenceDistributions(c)
	xref := make([][]float64, want.NumVertices())
	labelled := make([]bool, want.NumVertices())
	for v, ng := range want.Vertices {
		if d, ok := refs[ng]; ok {
			xref[v], labelled[v] = d, true
		}
	}
	propCfg := func(workers, lossEvery int) propagate.Config {
		return propagate.Config{Mu: 1e-6, Nu: 1e-6, Iterations: 4, Workers: workers, LossEvery: lossEvery}
	}
	runOnce := func(sg *graph.ShardedGraph, s int, cfg propagate.Config) ([][]float64, propagate.Result, error) {
		X := make([][]float64, want.NumVertices())
		var res propagate.Result
		var err error
		if s > 1 {
			res, err = propagate.RunSharded(sg, X, xref, labelled, cfg)
		} else {
			res, err = propagate.Run(want, X, xref, labelled, cfg)
		}
		return X, res, err
	}

	// Reference outputs from the single-index path, per loss schedule.
	wantX, wantRes, err := runOnce(nil, 1, propCfg(1, 0))
	if err != nil {
		return err
	}
	wantXSweep, wantResSweep, err := runOnce(nil, 1, propCfg(1, -1))
	if err != nil {
		return err
	}

	for _, s := range shardSweep {
		var sg *graph.ShardedGraph
		if s > 1 {
			if sg, err = graph.ShardGraph(want, s); err != nil {
				return err
			}
		}
		for _, w := range workerSweep {
			for _, sched := range []struct {
				suffix    string
				lossEvery int
				wx        [][]float64
				wres      propagate.Result
				baseline  float64
			}{
				// LossEvery=0 reproduces the recorded workload exactly
				// (loss after every sweep); LossEvery=-1 isolates the
				// sweep + halo-exchange kernel.
				{"Propagation", 0, wantX, wantRes, baselinePropagationIter4NsOp},
				{"PropagationSweepOnly", -1, wantXSweep, wantResSweep, 0},
			} {
				cfg := propCfg(w, sched.lossEvery)
				gotX, gotRes, err := runOnce(sg, s, cfg)
				if err != nil {
					return err
				}
				if err := sameBeliefs(gotX, sched.wx, gotRes, sched.wres); err != nil {
					return fmt.Errorf("shards=%d workers=%d lossEvery=%d: %w", s, w, sched.lossEvery, err)
				}
				name := fmt.Sprintf("ShardSweep_%s/shards=%d/workers=%d", sched.suffix, s, w)
				logf("running %s...\n", name)
				record(name, s, w, sched.baseline, testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, err := runOnce(sg, s, cfg); err != nil {
							b.Fatal(err)
						}
					}
				}))
			}
		}
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	logf("wrote %s\n", outPath)
	return nil
}

// sameBeliefs checks bit-identity of converged beliefs, the loss
// trajectory, and the final max delta between a sharded run and the
// single-index reference.
func sameBeliefs(gotX, wantX [][]float64, got, want propagate.Result) error {
	if len(gotX) != len(wantX) {
		return fmt.Errorf("belief count mismatch: %d vs %d", len(gotX), len(wantX))
	}
	for v := range wantX {
		if len(gotX[v]) != len(wantX[v]) {
			return fmt.Errorf("vertex %d: row length mismatch", v)
		}
		for y, x := range wantX[v] {
			if gotX[v][y] != x { // lint:checked bit-identity is the contract; exact compare intended
				return fmt.Errorf("vertex %d tag %d: beliefs differ: %v vs %v", v, y, gotX[v][y], x)
			}
		}
	}
	if got.MaxDelta != want.MaxDelta { // lint:checked bit-identity is the contract; exact compare intended
		return fmt.Errorf("max delta differs: %v vs %v", got.MaxDelta, want.MaxDelta)
	}
	if len(got.Loss) != len(want.Loss) {
		return fmt.Errorf("loss trajectory length differs: %d vs %d", len(got.Loss), len(want.Loss))
	}
	for i, l := range want.Loss {
		if got.Loss[i] != l { // lint:checked bit-identity is the contract; exact compare intended
			return fmt.Errorf("loss[%d] differs: %v vs %v", i, got.Loss[i], l)
		}
	}
	return nil
}
