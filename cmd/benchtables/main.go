// Command benchtables regenerates every table and figure of the GraphNER
// paper's evaluation section end-to-end over the synthetic substitute
// corpora, printing paper-style output. Artifacts (corpora, trained CRFs,
// graphs, distributional features) are cached inside the process, so
// requesting several tables shares the expensive work.
//
//	benchtables -all                    # everything, default scale
//	benchtables -table 1 -table 5       # just Tables I and V
//	benchtables -fig 3 -stats           # Figure 3 and §III-D statistics
//	benchtables -scale full -all        # paper-sized corpora (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/corpus/synth"
	"repro/internal/experiments"
)

type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }
func (l *intList) Set(s string) error {
	v, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func main() {
	var tables, figs intList
	scaleName := flag.String("scale", "smoke", "smoke, standard, or full")
	all := flag.Bool("all", false, "regenerate every table and figure")
	statsFlag := flag.Bool("stats", false, "print §III-D graph statistics")
	statsOnly := flag.Bool("stats-only", false, "print §III-D graph statistics without training CRFs (fast path for -scale full)")
	hotpaths := flag.Bool("hotpaths", false, "benchmark the allocation-sensitive kernels (graph build, propagation, references) and write a JSON report")
	hotpathsOut := flag.String("hotpaths-out", "BENCH_hotpaths.json", "output path for -hotpaths (\"-\" for stdout)")
	incremental := flag.Bool("incremental", false, "benchmark incremental graph maintenance vs full rebuild (batch 10/50/250 on a 1000-sentence base) and write a JSON report")
	incrementalOut := flag.String("incremental-out", "BENCH_incremental.json", "output path for -incremental (\"-\" for stdout)")
	lsh := flag.Bool("lsh", false, "benchmark banded-LSH graph construction vs the exact builder across corpus sizes (recall and worker bit-identity verified inline, end-to-end F1 accuracy gate) and write a JSON report")
	lshOut := flag.String("lsh-out", "BENCH_lsh.json", "output path for -lsh (\"-\" for stdout)")
	shard := flag.Bool("shard", false, "benchmark sharded graph construction and SPMD propagation across shard x worker counts (bit-identity verified inline) and write a JSON report")
	shardOut := flag.String("shard-out", "BENCH_shard.json", "output path for -shard (\"-\" for stdout)")
	servingFlag := flag.Bool("serving", false, "benchmark the graphnerd batching server over a frozen artifact (golden identity and warm-allocation checks inline, latency sweep across worker counts) and write a JSON report")
	servingOut := flag.String("serving-out", "BENCH_serving.json", "output path for -serving (\"-\" for stdout)")
	lintFlag := flag.Bool("lint", false, "benchmark graphnerlint itself (cold and warm whole-module runs, packages analyzed, findings count) and write a JSON report")
	lintOut := flag.String("lint-out", "BENCH_lint.json", "output path for -lint (\"-\" for stdout)")
	seed := flag.Int64("seed", 1, "corpus seed")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Var(&tables, "table", "table number to regenerate (repeatable: 1-5)")
	flag.Var(&figs, "fig", "figure number to regenerate (repeatable: 2-5)")
	flag.Parse()

	var scale experiments.Scale
	switch strings.ToLower(*scaleName) {
	case "smoke":
		scale = experiments.Smoke
	case "standard":
		scale = experiments.Standard
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *all {
		tables = intList{1, 2, 3, 4, 5}
		figs = intList{2, 3, 4, 5}
		*statsFlag = true
	}
	if len(tables) == 0 && len(figs) == 0 && !*statsFlag && !*statsOnly && !*hotpaths && !*incremental && !*shard && !*lsh && !*servingFlag && !*lintFlag {
		flag.Usage()
		os.Exit(2)
	}

	var log *os.File
	if !*quiet {
		log = os.Stderr
	}

	fail := func(what string, err error) {
		fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", what, err)
		os.Exit(1)
	}

	if *hotpaths {
		if err := runHotpaths(*hotpathsOut, log); err != nil {
			fail("hotpaths", err)
		}
	}
	if *incremental {
		if err := runIncremental(*incrementalOut, log); err != nil {
			fail("incremental", err)
		}
	}
	if *shard {
		if err := runShard(*shardOut, log); err != nil {
			fail("shard", err)
		}
	}
	if *lsh {
		if err := runLSH(*lshOut, log); err != nil {
			fail("lsh", err)
		}
	}
	if *servingFlag {
		if err := runServing(*servingOut, log); err != nil {
			fail("serving", err)
		}
	}
	if *lintFlag {
		if err := runLint(*lintOut, log); err != nil {
			fail("lint", err)
		}
	}
	if len(tables) == 0 && len(figs) == 0 && !*statsFlag && !*statsOnly {
		return
	}

	env := experiments.NewEnv(scale, *seed, log)

	for _, t := range tables {
		switch t {
		case 1:
			tab, err := env.Table1()
			if err != nil {
				fail("table 1", err)
			}
			fmt.Println(tab)
		case 2:
			tab, err := env.Table2()
			if err != nil {
				fail("table 2", err)
			}
			fmt.Println(tab)
		case 3:
			tab, err := env.Table3()
			if err != nil {
				fail("table 3", err)
			}
			fmt.Println(tab)
		case 4:
			for _, spec := range []struct {
				p synth.Profile
				b experiments.Base
			}{
				{synth.BC2GM, experiments.BANNER},
				{synth.BC2GM, experiments.ChemDNER},
				{synth.AML, experiments.BANNER},
				{synth.AML, experiments.ChemDNER},
			} {
				grid, err := env.Table4(spec.p, spec.b, 3)
				if err != nil {
					fail("table 4", err)
				}
				best := grid[0]
				fmt.Printf("Table IV — %s / %s: best (alpha, mu, nu, #iterations) = (%g, %g, %g, %d), CV F = %.2f%%\n",
					spec.p, spec.b, best.Alpha, best.Mu, best.Nu, best.Iterations, 100*best.F1)
				for _, g := range grid[:min(5, len(grid))] {
					fmt.Printf("    (%.2g, %.0e, %.0e, %d) -> %.2f%%\n", g.Alpha, g.Mu, g.Nu, g.Iterations, 100*g.F1)
				}
			}
		case 5:
			hs, err := env.Table5()
			if err != nil {
				fail("table 5", err)
			}
			fmt.Println("Table V — approximate randomization significance tests")
			fmt.Print(experiments.FormatHypotheses(hs))
			fmt.Println()
		default:
			fail("table", fmt.Errorf("unknown table %d", t))
		}
	}

	for _, f := range figs {
		switch f {
		case 2:
			pts, err := env.Figure2(nil, 3)
			if err != nil {
				fail("figure 2", err)
			}
			fmt.Println("Figure 2 — train+test wall time by train:test ratio (BC2GM, CRF=BANNER)")
			fmt.Print(experiments.FormatFigure2(pts))
			fmt.Println()
		case 3:
			rep, err := env.Figure3(synth.BC2GM)
			if err != nil {
				fail("figure 3", err)
			}
			fmt.Println("Figure 3 — histogram of Influence(v) (BC2GM all-features graph)")
			fmt.Print(rep.Influence.String())
			fmt.Println("Figure 3 — histogram of |Influencees(v)|")
			fmt.Print(rep.Influencees.String())
			fmt.Println()
		case 4, 5:
			p := synth.AML
			if f == 5 {
				p = synth.BC2GM
			}
			rep, err := env.UpsetFigure(p)
			if err != nil {
				fail(fmt.Sprintf("figure %d", f), err)
			}
			fmt.Printf("Figure %d — false-positive UpSet, GraphNER vs BANNER-ChemDNER (%s)\n", f, p)
			fmt.Print(rep.Rendered)
			fmt.Printf("gene-related FP proportion: GraphNER %d/%d, baseline %d/%d; chi-square=%.3f p=%.3g\n\n",
				rep.GNGene, rep.GNGene+rep.GNSpurious,
				rep.BaseGene, rep.BaseGene+rep.BaseSpurious,
				rep.Chi2, rep.PValue)
		default:
			fail("figure", fmt.Errorf("unknown figure %d", f))
		}
	}

	if *statsFlag {
		for _, p := range []synth.Profile{synth.BC2GM, synth.AML} {
			st, err := env.GraphStatistics(p)
			if err != nil {
				fail("stats", err)
			}
			fmt.Println(experiments.FormatGraphStats(st))
		}
	}

	if *statsOnly {
		for _, p := range []synth.Profile{synth.BC2GM, synth.AML} {
			st, err := env.GraphStatisticsOnly(p)
			if err != nil {
				fail("stats-only", err)
			}
			fmt.Println(experiments.FormatGraphStats(st))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
