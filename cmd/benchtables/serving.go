package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/crf"
	"repro/internal/graphner"
	"repro/internal/serving"
)

// servingBench is one measured client-load configuration in
// BENCH_serving.json.
type servingBench struct {
	Name       string `json:"name"`
	GoMaxProcs int    `json:"go_max_procs"`
	// Workers is the server's batch-worker count; Clients the number of
	// concurrent submitting goroutines driving it.
	Workers  int `json:"workers"`
	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	// Latency percentiles over every request, in microseconds, and the
	// aggregate throughput in sentences per second.
	P50Micros       float64 `json:"p50_us"`
	P99Micros       float64 `json:"p99_us"`
	SentencesPerSec float64 `json:"sentences_per_sec"`
}

type servingReport struct {
	GeneratedBy string `json:"generated_by"`
	GoMaxProcs  int    `json:"go_max_procs"`
	// Artifact provenance: size and checksum of the frozen blob the
	// server loaded, and how long the validated cold start took.
	ArtifactBytes  int     `json:"artifact_bytes"`
	ArtifactSHA256 string  `json:"artifact_sha256"`
	ColdStartMS    float64 `json:"cold_start_ms"`
	Vertices       int     `json:"vertices"`
	Edges          int     `json:"edges"`
	// GoldenIdentical records the inline identity check: every frozen
	// sentence served through the batching server produced exactly the
	// labels System.Test computed before freezing. The run aborts on
	// mismatch, so a written report always says true.
	GoldenIdentical bool `json:"golden_identical"`
	// AllocsPerWarmReq is testing.AllocsPerRun over warm single-worker
	// requests (sentence compiled, pools hot); the serving contract is 0.
	AllocsPerWarmReq float64        `json:"allocs_per_warm_req"`
	Benchmarks       []servingBench `json:"benchmarks"`
}

// runServing freezes a small artifact, round-trips it through its binary
// form, and drives the batching server in-process: golden identity and
// warm-allocation checks first, then a latency/throughput sweep across
// worker counts. Results land in BENCH_serving.json.
func runServing(outPath string, log *os.File) error {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	cfg := synth.DefaultConfig(synth.BC2GM, 5)
	cfg.Sentences = 600
	train, test := synth.GenerateSplit(cfg)
	gcfg := graphner.Default()
	gcfg.Order = crf.Order1
	gcfg.CRFIterations = 40
	logf("serving: training base CRF (%d train sentences)...\n", len(train.Sentences))
	sys, err := graphner.Train(train, gcfg)
	if err != nil {
		return err
	}
	out, err := sys.Test(test)
	if err != nil {
		return err
	}
	art, err := sys.Freeze(test, out)
	if err != nil {
		return err
	}
	var blob bytes.Buffer
	if _, err := art.WriteTo(&blob); err != nil {
		return err
	}
	t0 := time.Now()
	loaded, err := graphner.ReadArtifact(bytes.NewReader(blob.Bytes()))
	if err != nil {
		return err
	}
	coldStart := time.Since(t0)
	logf("serving: artifact %d bytes, cold start %v\n", blob.Len(), coldStart.Round(time.Microsecond))

	report := servingReport{
		GeneratedBy:    "benchtables -serving",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		ArtifactBytes:  blob.Len(),
		ArtifactSHA256: loaded.Checksum(),
		ColdStartMS:    float64(coldStart.Nanoseconds()) / 1e6,
		Vertices:       loaded.Graph().NumVertices(),
		Edges:          loaded.Graph().NumEdges(),
	}

	texts := make([]string, len(test.Sentences))
	for i, s := range test.Sentences {
		texts[i] = s.Text
	}

	// Golden identity: the served labels must match System.Test exactly.
	srv, err := serving.NewServer(loaded, serving.Config{Workers: 2})
	if err != nil {
		return err
	}
	for i, text := range texts {
		got, err := srv.Tag(text)
		if err != nil {
			srv.Close()
			return fmt.Errorf("golden check: sentence %d: %w", i, err)
		}
		if !reflect.DeepEqual(got, out.Tags[i]) {
			srv.Close()
			return fmt.Errorf("golden check: sentence %d served labels differ from System.Test", i)
		}
	}
	srv.Close()
	report.GoldenIdentical = true
	logf("serving: golden check passed over %d frozen sentences\n", len(texts))

	// Warm allocations: one worker, hot caches.
	srv, err = serving.NewServer(loaded, serving.Config{Workers: 1})
	if err != nil {
		return err
	}
	tags := make([]corpus.Tag, 256)
	for _, text := range texts[:16] {
		if _, err := srv.TagInto(text, time.Time{}, tags); err != nil {
			srv.Close()
			return err
		}
	}
	i := 0
	report.AllocsPerWarmReq = testing.AllocsPerRun(300, func() {
		if _, err := srv.TagInto(texts[i%16], time.Time{}, tags); err != nil {
			panic(err)
		}
		i++
	})
	srv.Close()
	logf("serving: %.2f allocs per warm request\n", report.AllocsPerWarmReq)

	// Latency/throughput sweep at 1 core, 4 cores, and all cores.
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, w := range workerCounts {
		if w <= 0 || seen[w] {
			continue
		}
		seen[w] = true
		b, err := benchServing(loaded, texts, w)
		if err != nil {
			return err
		}
		report.Benchmarks = append(report.Benchmarks, b)
		logf("serving: %s: p50 %.0fµs p99 %.0fµs %.0f sentences/sec\n",
			b.Name, b.P50Micros, b.P99Micros, b.SentencesPerSec)
	}

	return writeReport(outPath, &report)
}

// benchServing drives one server configuration with 2×workers client
// goroutines and reports the latency distribution and throughput.
func benchServing(art *graphner.Artifact, texts []string, workers int) (servingBench, error) {
	srv, err := serving.NewServer(art, serving.Config{Workers: workers, BatchMax: 32})
	if err != nil {
		return servingBench{}, err
	}
	defer srv.Close()
	clients := 2 * workers
	perClient := 1500
	durs := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup

	// Warm every worker's cache and the lattice pools before timing.
	warm := make([]corpus.Tag, 256)
	for i := 0; i < 64; i++ {
		if _, err := srv.TagInto(texts[i%len(texts)], time.Time{}, warm); err != nil {
			return servingBench{}, err
		}
	}

	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tags := make([]corpus.Tag, 256)
			durs[c] = make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				text := texts[(c+i*clients)%len(texts)]
				t0 := time.Now()
				if _, err := srv.TagInto(text, time.Time{}, tags); err != nil {
					errs[c] = err
					return
				}
				durs[c] = append(durs[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return servingBench{}, err
		}
	}
	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p int) float64 {
		return float64(all[len(all)*p/100].Nanoseconds()) / 1e3
	}
	return servingBench{
		Name:            fmt.Sprintf("Serving_TagInto/workers=%d", workers),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Workers:         workers,
		Clients:         clients,
		Requests:        len(all),
		P50Micros:       pct(50),
		P99Micros:       pct(99),
		SentencesPerSec: float64(len(all)) / elapsed.Seconds(),
	}, nil
}

// writeReport marshals a report to outPath ("-" for stdout).
func writeReport(outPath string, report any) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}
