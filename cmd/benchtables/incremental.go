package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/graph"
)

// incrementalEntry compares folding one batch of sentences into a
// maintained graph (graph.Updater.AddSentences) against a from-scratch
// Build over the union corpus, at one batch size.
type incrementalEntry struct {
	BatchSize int `json:"batch_size"`

	IncrementalNsOp     float64 `json:"incremental_ns_op"`
	IncrementalBOp      int64   `json:"incremental_b_op"`
	IncrementalAllocsOp int64   `json:"incremental_allocs_op"`

	RebuildNsOp     float64 `json:"rebuild_ns_op"`
	RebuildBOp      int64   `json:"rebuild_b_op"`
	RebuildAllocsOp int64   `json:"rebuild_allocs_op"`

	// Speedup is rebuild ns/op over incremental ns/op.
	Speedup float64 `json:"speedup"`

	// Update-shape diagnostics: how much of the graph one batch dirtied,
	// and how the dirty rows were fixed — in-place repairs from the
	// candidate reserve against full postings re-scans.
	NewVertices      int `json:"new_vertices"`
	UpdatedVertices  int `json:"updated_vertices"`
	DirtyRows        int `json:"dirty_rows"`
	RepairedRows     int `json:"repaired_rows"`
	RescannedRows    int `json:"rescanned_rows"`
	AffectedFeatures int `json:"affected_features"`

	// GraphEqual records the hard correctness bar checked inline: the
	// incrementally maintained graph is exactly equal to the from-scratch
	// build on the union (up to canonical vertex renumbering).
	GraphEqual bool `json:"graph_equal"`
}

type incrementalReport struct {
	GeneratedBy   string             `json:"generated_by"`
	GoMaxProcs    int                `json:"go_max_procs"`
	BaseSentences int                `json:"base_sentences"`
	BaseVertices  int                `json:"base_vertices"`
	K             int                `json:"k"`
	MaxDF         int                `json:"max_df"`
	Entries       []incrementalEntry `json:"entries"`
}

// runIncremental benchmarks incremental graph maintenance against full
// rebuilds at batch sizes 10/50/250 on a 1000-sentence base, verifies
// the equivalence bar for every batch size, and writes
// BENCH_incremental.json.
func runIncremental(outPath string, log *os.File) error {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	const baseSentences = 1000
	gen := func(seed int64, n int) *corpus.Corpus {
		cfg := synth.DefaultConfig(synth.BC2GM, seed)
		cfg.Sentences = n
		return synth.NewGenerator(cfg).Generate()
	}
	base := gen(5, baseSentences)
	pool := gen(6, 250).StripLabels()
	// The experiments' graph configuration (Env defaults): exact k-NN
	// with document-frequency pruning.
	cfg := graph.BuilderConfig{K: 10, MaxDF: 2000}

	logf("building 1000-sentence base graph...\n")
	u0, err := graph.NewUpdater(base, cfg)
	if err != nil {
		return err
	}
	report := incrementalReport{
		GeneratedBy:   "benchtables -incremental",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		BaseSentences: baseSentences,
		BaseVertices:  u0.Graph().NumVertices(),
		K:             cfg.K,
		MaxDF:         cfg.MaxDF,
	}
	// Rebuilds run under the Updater's frozen statistics snapshot — the
	// configuration that reproduces the maintained graph exactly, and the
	// cheapest possible rebuild (corpus-wide recounting is skipped), so
	// the reported speedups are conservative.
	rcfg := cfg
	rcfg.Stats = u0.Stats()

	for _, bs := range []int{10, 50, 250} {
		batch := pool.Sentences[:bs]
		union := corpus.New()
		union.Sentences = append(union.Sentences, base.Sentences...)
		union.Sentences = append(union.Sentences, batch...)

		// Equivalence bar + update-shape diagnostics, once per size.
		uCheck := u0.Clone()
		res, err := uCheck.AddSentences(batch)
		if err != nil {
			return err
		}
		want, err := graph.Build(union, rcfg)
		if err != nil {
			return err
		}
		entry := incrementalEntry{
			BatchSize:        bs,
			NewVertices:      res.NewVertices,
			UpdatedVertices:  res.UpdatedVertices,
			DirtyRows:        len(res.DirtyRows),
			RepairedRows:     res.RepairedRows,
			RescannedRows:    res.RescannedRows,
			AffectedFeatures: res.AffectedFeatures,
			GraphEqual:       uCheck.Graph().CanonicalClone().Equal(want.CanonicalClone()),
		}
		if !entry.GraphEqual {
			return fmt.Errorf("incremental graph for batch size %d differs from from-scratch build", bs)
		}

		logf("running Incremental/batch=%d...\n", bs)
		inc := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				u := u0.Clone()
				b.StartTimer()
				if _, err := u.AddSentences(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
		entry.IncrementalNsOp = float64(inc.NsPerOp())
		entry.IncrementalBOp = inc.AllocedBytesPerOp()
		entry.IncrementalAllocsOp = inc.AllocsPerOp()

		logf("running Rebuild/batch=%d...\n", bs)
		reb := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graph.Build(union, rcfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		entry.RebuildNsOp = float64(reb.NsPerOp())
		entry.RebuildBOp = reb.AllocedBytesPerOp()
		entry.RebuildAllocsOp = reb.AllocsPerOp()
		if entry.IncrementalNsOp > 0 {
			entry.Speedup = entry.RebuildNsOp / entry.IncrementalNsOp
		}
		logf("batch=%-4d incremental %12.0f ns/op (%d dirty rows)  rebuild %12.0f ns/op  speedup %.1fx\n",
			bs, entry.IncrementalNsOp, entry.DirtyRows, entry.RebuildNsOp, entry.Speedup)
		report.Entries = append(report.Entries, entry)
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	logf("wrote %s\n", outPath)
	return nil
}
