package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

// lintReport is the shape of BENCH_lint.json: cold/warm wall time of a
// whole-module graphnerlint run, so cache regressions (satellite 1 of the
// contracts PR) show up as a warm-time cliff in CI history.
type lintReport struct {
	GeneratedBy string `json:"generated_by"`
	// ColdWallMs is a full analysis from an empty cache; WarmWallMs is
	// the immediately following run, which should be dominated by the
	// module scan + cache read.
	ColdWallMs       float64 `json:"cold_wall_ms"`
	WarmWallMs       float64 `json:"warm_wall_ms"`
	PackagesAnalyzed int     `json:"packages_analyzed"`
	Findings         int     `json:"findings"`
}

// moduleRoot walks up from the working directory to the enclosing go.mod,
// mirroring the linter's own root discovery.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// runLint benchmarks the contract linter itself: builds graphnerlint once,
// wipes its cache, then times a cold and a warm `graphnerlint -json ./...`
// over this module and writes a JSON report. Exit status 1 (findings) is
// tolerated — the benchmark measures wall time, not cleanliness; the CI
// baseline gate owns that.
func runLint(outPath string, log *os.File) error {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	root, err := moduleRoot()
	if err != nil {
		return err
	}

	bin := filepath.Join(os.TempDir(), fmt.Sprintf("graphnerlint-bench-%d", os.Getpid()))
	logf("lint: building graphnerlint\n")
	build := exec.Command("go", "build", "-o", bin, "./cmd/graphnerlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		return fmt.Errorf("building graphnerlint: %v\n%s", err, out)
	}
	defer os.Remove(bin)

	cacheDir := filepath.Join(root, ".graphnerlint-cache")
	if err := os.RemoveAll(cacheDir); err != nil {
		return fmt.Errorf("clearing lint cache: %v", err)
	}

	lint := func(label string) (float64, []byte, error) {
		var out bytes.Buffer
		cmd := exec.Command(bin, "-json", "./...")
		cmd.Dir = root
		cmd.Stdout = &out
		start := time.Now()
		err := cmd.Run()
		wall := time.Since(start)
		if err != nil {
			// Exit 1 just means the tree has findings.
			if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
				return 0, nil, fmt.Errorf("%s lint run: %v", label, err)
			}
		}
		logf("lint: %s run %.0f ms\n", label, float64(wall.Microseconds())/1e3)
		return float64(wall.Microseconds()) / 1e3, out.Bytes(), nil
	}

	report := lintReport{GeneratedBy: "benchtables -lint"}
	var coldOut []byte
	if report.ColdWallMs, coldOut, err = lint("cold"); err != nil {
		return err
	}
	if report.WarmWallMs, _, err = lint("warm"); err != nil {
		return err
	}

	var findings []json.RawMessage
	if err := json.Unmarshal(coldOut, &findings); err != nil {
		return fmt.Errorf("parsing -json output: %v", err)
	}
	report.Findings = len(findings)

	// The cache records one entry per analyzed package.
	var cf struct {
		Packages map[string]json.RawMessage `json:"packages"`
	}
	data, err := os.ReadFile(filepath.Join(cacheDir, "results.json"))
	if err != nil {
		return fmt.Errorf("reading lint cache: %v", err)
	}
	if err := json.Unmarshal(data, &cf); err != nil {
		return fmt.Errorf("parsing lint cache: %v", err)
	}
	report.PackagesAnalyzed = len(cf.Packages)

	logf("lint: %d packages, %d findings\n", report.PackagesAnalyzed, report.Findings)
	return writeReport(outPath, &report)
}
