// Command graphner is the command-line interface to the GraphNER
// reproduction: it generates synthetic gene-mention corpora in the
// BioCreative II on-disk format, trains the base CRFs, runs the full
// Algorithm-1 pipeline, and evaluates against gold annotations.
//
// Subcommands:
//
//	graphner generate -profile bc2gm -out DIR [-sentences N] [-seed S]
//	    Write sentences, GENE.eval and ALTGENE.eval files for a synthetic
//	    corpus (train and test splits).
//
//	graphner run -profile bc2gm [-sentences N] [-seed S] [-base banner|chemdner]
//	    Generate a corpus, train the base CRF, run GraphNER, and print
//	    baseline and GraphNER precision/recall/F plus significance.
//
//	graphner tag -train DIR [-order 1|2] [-nbest N] [-confidence]
//	    Train on a generated corpus directory and tag sentences read from
//	    standard input, one per line, writing BIO-tagged tokens, optionally
//	    with n-best alternatives and per-mention confidence estimates.
//
//	graphner eval -sentences F -gold GENE.eval -pred PRED.eval [-alt ALTGENE.eval]
//	    Score a predictions file against gold annotations with the
//	    BioCreative II rules (exact match, alternatives honoured).
//
//	graphner freeze -out artifact.gna [-profile bc2gm] [-sentences N] [-seed S]
//	    Train the system, run the transductive TEST pass, and write the
//	    frozen serving artifact graphnerd loads (model, alphabet,
//	    references, graph, beliefs; checksummed single blob).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"math"
	"path/filepath"
	"time"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/crf"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/graphner"
	"repro/internal/sigf"
	"repro/internal/tokenize"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "tag":
		err = cmdTag(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "freeze":
		err = cmdFreeze(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphner:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: graphner <generate|run|tag|eval|freeze> [flags]
run "graphner <subcommand> -h" for flags`)
}

func parseProfile(s string) (synth.Profile, error) {
	switch strings.ToLower(s) {
	case "bc2gm":
		return synth.BC2GM, nil
	case "aml":
		return synth.AML, nil
	}
	return 0, fmt.Errorf("unknown profile %q (want bc2gm or aml)", s)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	profile := fs.String("profile", "bc2gm", "corpus profile: bc2gm or aml")
	out := fs.String("out", "corpus", "output directory")
	sentences := fs.Int("sentences", 0, "total sentences (0 = paper sizes)")
	seed := fs.Int64("seed", 1, "generator seed")
	conll := fs.Bool("conll", false, "additionally write train.conll / test.conll (CoNLL column format)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*profile)
	if err != nil {
		return err
	}
	cfg := synth.DefaultConfig(p, *seed)
	if *sentences > 0 {
		cfg.Sentences = *sentences
	}
	train, test := synth.GenerateSplit(cfg)
	if err := train.WriteDir(*out, "train"); err != nil {
		return err
	}
	if err := test.WriteDir(*out, "test"); err != nil {
		return err
	}
	if *conll {
		for _, part := range []struct {
			name string
			c    *corpus.Corpus
		}{{"train", train}, {"test", test}} {
			f, err := os.Create(filepath.Join(*out, part.name+".conll"))
			if err != nil {
				return err
			}
			if err := part.c.WriteCoNLL(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("wrote %s corpus to %s: %d train / %d test sentences, %d/%d mentions\n",
		p, *out, len(train.Sentences), len(test.Sentences), train.NumMentions(), test.NumMentions())
	return nil
}

// lshFlags registers the graph-mode and LSH flags shared by run and
// freeze, returning an apply function that copies them into a Config.
// Zero-valued knobs defer to the library defaults (graph.LSHConfig).
func lshFlags(fs *flag.FlagSet) func(*graphner.Config) error {
	mode := fs.String("graph-mode", "exact", "graph construction algorithm: exact or lsh (banded LSH seed, exact re-rank, neighbour-of-neighbour refinement)")
	bits := fs.Int("lsh-bits", 0, "LSH bits per band, max 32 (0 = default 8)")
	tables := fs.Int("lsh-tables", 0, "LSH band (hash table) count (0 = default 16)")
	maxBucket := fs.Int("lsh-maxbucket", 0, "skip LSH buckets larger than this (0 = default 2000)")
	rerank := fs.Int("lsh-rerank", 0, "exact-cosine re-rank budget per query (0 = default 4K+24)")
	refine := fs.Int("lsh-refine", 0, "neighbour-of-neighbour refinement sweeps (0 = default 4, negative = none)")
	multiProbe := fs.Bool("lsh-multiprobe", false, "also probe the least-confident bit flips of every band")
	lshSeed := fs.Int64("lsh-seed", 1, "LSH hyperplane seed")
	return func(cfg *graphner.Config) error {
		m, err := graph.ParseGraphMode(*mode)
		if err != nil {
			return err
		}
		cfg.GraphMode = m
		cfg.LSH = graph.LSHConfig{
			Bits: *bits, Tables: *tables, MaxBucket: *maxBucket,
			Rerank: *rerank, Refine: *refine, MultiProbe: *multiProbe,
			Seed: *lshSeed,
		}
		return nil
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	profile := fs.String("profile", "bc2gm", "corpus profile: bc2gm or aml")
	sentences := fs.Int("sentences", 2500, "total sentences (0 = paper sizes)")
	seed := fs.Int64("seed", 1, "seed")
	order := fs.Int("order", 1, "CRF order (1 or 2)")
	iters := fs.Int("crf-iters", 40, "CRF training iterations")
	alpha := fs.Float64("alpha", 0, "mixture weight of the CRF posterior (0 = default)")
	k := fs.Int("k", 10, "graph out-degree")
	shards := fs.Int("shards", 1, "graph shards for postings-partitioned construction and SPMD propagation (results are bit-identical for every value)")
	applyLSH := lshFlags(fs)
	reps := fs.Int("sigf", 10000, "sigf repetitions (0 disables)")
	incremental := fs.Bool("incremental", false, "run TEST in streaming mode: fold extra unlabelled batches into the maintained graph with warm-start propagation")
	streamPool := fs.Int("stream-pool", 150, "with -incremental: total extra unlabelled sentences to stream in")
	streamBatch := fs.Int("stream-batch", 50, "with -incremental: sentences per streamed batch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*profile)
	if err != nil {
		return err
	}
	cfg := synth.DefaultConfig(p, *seed)
	if *sentences > 0 {
		cfg.Sentences = *sentences
	}
	train, test := synth.GenerateSplit(cfg)
	fmt.Printf("corpus %s: %d train / %d test sentences\n", p, len(train.Sentences), len(test.Sentences))

	gcfg := graphner.Default()
	gcfg.Order = crf.Order(*order)
	gcfg.CRFIterations = *iters
	gcfg.Alpha = *alpha
	gcfg.K = *k
	gcfg.Shards = *shards
	if err := applyLSH(&gcfg); err != nil {
		return err
	}
	fmt.Println("training base CRF...")
	sys, err := graphner.Train(train, gcfg)
	if err != nil {
		return err
	}
	var baseTags, gnTags [][]corpus.Tag
	var g interface {
		NumVertices() int
		NumEdges() int
	}
	if *incremental {
		fmt.Println("building similarity graph and running Algorithm 1 (streaming mode)...")
		st, err := graphner.NewStreamer(sys, test)
		if err != nil {
			return err
		}
		if r, err := score(test, st.Tags()); err == nil {
			fmt.Printf("initial pass  : %v\n", r.Metrics())
		} else {
			return err
		}
		poolCfg := synth.DefaultConfig(p, *seed+1)
		poolCfg.Sentences = *streamPool
		pool := synth.NewGenerator(poolCfg).Generate()
		for start := 0; start < len(pool.Sentences); start += *streamBatch {
			end := start + *streamBatch
			if end > len(pool.Sentences) {
				end = len(pool.Sentences)
			}
			batch := corpus.New()
			batch.Sentences = pool.Sentences[start:end]
			t0 := time.Now()
			res, err := st.AddUnlabelled(batch)
			if err != nil {
				return err
			}
			fmt.Printf("batch %d-%d: %v — %d new / %d updated vertices, %d dirty rows (%d repaired, %d re-scanned), %d warm sweeps (%d row updates), %d test sentences re-decoded\n",
				start, end-1, time.Since(t0).Round(time.Millisecond),
				res.Update.NewVertices, res.Update.UpdatedVertices,
				len(res.Update.DirtyRows), res.Update.RepairedRows, res.Update.RescannedRows,
				res.Warm.Sweeps, res.Warm.Updates, res.Redecoded)
		}
		baseTags, gnTags, g = st.BaselineTags(), st.Tags(), st.Graph()
	} else {
		fmt.Println("building similarity graph and running Algorithm 1...")
		out, err := sys.Test(test)
		if err != nil {
			return err
		}
		fmt.Printf("graph: %.1f%% labelled, %.2f%% positive\n",
			100*out.LabelledVertexFraction, 100*out.PositiveVertexFraction)
		baseTags, gnTags, g = out.BaselineTags, out.Tags, out.Graph
	}
	baseRes, err := score(test, baseTags)
	if err != nil {
		return err
	}
	gnRes, err := score(test, gnTags)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("baseline CRF : %v\n", baseRes.Metrics())
	fmt.Printf("GraphNER     : %v\n", gnRes.Metrics())
	if *reps > 0 {
		r, err := sigf.Test(sigf.FromResults(baseRes), sigf.FromResults(gnRes), sigf.FScore,
			sigf.Options{Repetitions: *reps, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("sigf F-score difference %.4f, p = %.4g (%d reps)\n", r.Observed, r.PValue, r.Repetitions)
	}
	return nil
}

func score(test *corpus.Corpus, tags [][]corpus.Tag) (*eval.Result, error) {
	preds, err := eval.PredictionsFromTags(test, tags)
	if err != nil {
		return nil, err
	}
	return eval.Evaluate(test, preds)
}

func cmdTag(args []string) error {
	fs := flag.NewFlagSet("tag", flag.ExitOnError)
	dir := fs.String("train", "", "corpus directory written by `graphner generate`")
	order := fs.Int("order", 1, "CRF order (1 or 2)")
	iters := fs.Int("crf-iters", 50, "CRF training iterations")
	nbest := fs.Int("nbest", 1, "also print the n best taggings with probabilities")
	conf := fs.Bool("confidence", false, "print per-mention confidence estimates")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("tag: -train is required")
	}
	train, err := corpus.ReadDir(*dir, "train")
	if err != nil {
		return err
	}
	cfg := graphner.Default()
	cfg.Order = crf.Order(*order)
	cfg.CRFIterations = *iters
	cfg.Extractor = features.NewExtractor(nil)
	fmt.Fprintln(os.Stderr, "training...")
	sys, err := graphner.Train(train, cfg)
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(os.Stdin)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		s := &corpus.Sentence{Text: line, Tokens: tokenize.Sentence(line)}
		in := sys.Compiler().CompileSentence(s)
		tags := sys.Model().Decode(in)
		for i, tok := range s.Tokens {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%s/%s", tok.Text, tags[i])
		}
		fmt.Fprintln(w)
		if *conf {
			mentions := corpus.MentionsFromTags(s.Tokens, tags, s.Text)
			for i, c := range sys.Model().MentionConfidence(in, tags) {
				fmt.Fprintf(w, "# mention %q confidence %.3f\n", mentions[i].Text, c)
			}
		}
		if *nbest > 1 {
			for _, p := range sys.Model().NBest(in, *nbest) {
				fmt.Fprintf(w, "# p=%.4f ", mathExp(p.LogProb))
				for i, tok := range s.Tokens {
					if i > 0 {
						fmt.Fprint(w, " ")
					}
					fmt.Fprintf(w, "%s/%s", tok.Text, p.Tags[i])
				}
				fmt.Fprintln(w)
			}
		}
	}
	return sc.Err()
}

func mathExp(x float64) float64 { return math.Exp(x) }

// cmdEval is the equivalent of the BioCreative II evaluation script:
// score a predictions file (GENE.eval format) against gold annotations,
// honouring alternative annotations.
func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	sentFile := fs.String("sentences", "", "sentence file (ID<space>text per line)")
	goldFile := fs.String("gold", "", "gold GENE.eval file")
	altFile := fs.String("alt", "", "optional ALTGENE.eval file")
	predFile := fs.String("pred", "", "predicted GENE.eval file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sentFile == "" || *goldFile == "" || *predFile == "" {
		return fmt.Errorf("eval: -sentences, -gold and -pred are required")
	}
	sf, err := os.Open(*sentFile)
	if err != nil {
		return err
	}
	defer sf.Close()
	c, err := corpus.ReadSentences(sf)
	if err != nil {
		return err
	}
	readAnns := func(path string) (map[string][]corpus.Mention, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return corpus.ReadAnnotations(f)
	}
	gold, err := readAnns(*goldFile)
	if err != nil {
		return err
	}
	var alts map[string][]corpus.Mention
	if *altFile != "" {
		if alts, err = readAnns(*altFile); err != nil {
			return err
		}
	}
	c.ApplyAnnotations(gold, alts)
	predAnns, err := readAnns(*predFile)
	if err != nil {
		return err
	}
	preds := make([]eval.Prediction, len(c.Sentences))
	for i, s := range c.Sentences {
		preds[i] = eval.Prediction{ID: s.ID, Mentions: predAnns[s.ID]}
	}
	res, err := eval.Evaluate(c, preds)
	if err != nil {
		return err
	}
	m := res.Metrics()
	fmt.Printf("TP %d  FP %d  FN %d\n", res.Counts.TP, res.Counts.FP, res.Counts.FN)
	fmt.Printf("Precision %.2f%%  Recall %.2f%%  F-score %.2f%%\n",
		100*m.Precision, 100*m.Recall, 100*m.F1)
	return nil
}

func cmdFreeze(args []string) error {
	fs := flag.NewFlagSet("freeze", flag.ExitOnError)
	profile := fs.String("profile", "bc2gm", "corpus profile: bc2gm or aml")
	sentences := fs.Int("sentences", 2500, "total sentences (0 = paper sizes)")
	seed := fs.Int64("seed", 1, "seed")
	order := fs.Int("order", 1, "CRF order (1 or 2)")
	iters := fs.Int("crf-iters", 40, "CRF training iterations")
	alpha := fs.Float64("alpha", 0, "mixture weight of the CRF posterior (0 = default)")
	k := fs.Int("k", 10, "graph out-degree")
	shards := fs.Int("shards", 1, "graph shards during the freeze-time build")
	applyLSH := lshFlags(fs)
	out := fs.String("out", "artifact.gna", "artifact output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*profile)
	if err != nil {
		return err
	}
	cfg := synth.DefaultConfig(p, *seed)
	if *sentences > 0 {
		cfg.Sentences = *sentences
	}
	train, test := synth.GenerateSplit(cfg)
	fmt.Printf("corpus %s: %d train / %d frozen sentences\n", p, len(train.Sentences), len(test.Sentences))

	gcfg := graphner.Default()
	gcfg.Order = crf.Order(*order)
	gcfg.CRFIterations = *iters
	gcfg.Alpha = *alpha
	gcfg.K = *k
	gcfg.Shards = *shards
	if err := applyLSH(&gcfg); err != nil {
		return err
	}
	fmt.Println("training base CRF...")
	sys, err := graphner.Train(train, gcfg)
	if err != nil {
		return err
	}
	fmt.Println("running transductive TEST pass and freezing...")
	t0 := time.Now()
	art, err := sys.Freeze(test, nil)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	n, err := art.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	g := art.Graph()
	fmt.Printf("froze %d vertices / %d edges in %v\n", g.NumVertices(), g.NumEdges(), time.Since(t0).Round(time.Millisecond))
	fmt.Printf("wrote %s: %d bytes, sha256 %s\n", *out, n, art.Checksum())
	return nil
}
