package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The lint ratchet. A baseline file records the accepted findings as
// per-{analyzer, package, symbol} counts — deliberately line-number-free
// so unrelated edits that shift code around do not churn it. A run with
// -baseline suppresses up to the recorded count per key and fails only
// on findings beyond it; -update-baseline rewrites the file from the
// current run but refuses to grow any count, so debt can only be paid
// down through the ratchet, never added.

// baselineVersion guards the on-disk shape.
const baselineVersion = 1

// baselineEntry is one accepted-debt record.
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"` // module-root-relative package directory
	Symbol   string `json:"symbol"`  // enclosing declaration, "" at file scope
	Count    int    `json:"count"`
}

// baselineData is the on-disk shape.
type baselineData struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

// baselineKey buckets a root-relative finding. The package is the
// finding's directory, the symbol the enclosing declaration: stable
// under line churn, split on any real movement between declarations.
func baselineKey(f finding) string {
	return f.Analyzer + "\x00" + filepath.ToSlash(filepath.Dir(f.File)) + "\x00" + f.Symbol
}

// keyString renders a key for human-facing refusal messages.
func keyString(key string) string {
	parts := [3]string{}
	copy(parts[:], splitKey(key))
	sym := parts[2]
	if sym == "" {
		sym = "(file scope)"
	}
	return fmt.Sprintf("%s: %s: %s", parts[0], parts[1], sym)
}

func splitKey(key string) []string {
	out := make([]string, 0, 3)
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '\x00' {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return append(out, key[start:])
}

// baselineCounts folds findings into per-key counts.
func baselineCounts(findings []finding) map[string]int {
	counts := make(map[string]int)
	for _, f := range findings {
		counts[baselineKey(f)]++
	}
	return counts
}

// loadBaseline reads a baseline file into a per-key budget. A missing
// file is an empty budget (exists=false), not an error: a ratcheted run
// before the first -update-baseline simply fails on every finding.
func loadBaseline(path string) (map[string]int, bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]int{}, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var bd baselineData
	if err := json.Unmarshal(data, &bd); err != nil {
		return nil, false, fmt.Errorf("graphnerlint: baseline %s: %w", path, err)
	}
	if bd.Version != baselineVersion {
		return nil, false, fmt.Errorf("graphnerlint: baseline %s: unsupported version %d", path, bd.Version)
	}
	budget := make(map[string]int, len(bd.Findings))
	for _, e := range bd.Findings {
		budget[e.Analyzer+"\x00"+e.Package+"\x00"+e.Symbol] += e.Count
	}
	return budget, true, nil
}

// applyBaseline suppresses up to budget[key] findings per key, in
// source order, and returns the remainder — the new debt.
func applyBaseline(findings []finding, budget map[string]int) ([]finding, int) {
	used := make(map[string]int)
	kept := findings[:0:0]
	suppressed := 0
	for _, f := range findings {
		k := baselineKey(f)
		if used[k] < budget[k] {
			used[k]++
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed
}

// writeBaseline stores the counts sorted by key, atomically.
func writeBaseline(path string, counts map[string]int) error {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bd := baselineData{Version: baselineVersion, Findings: make([]baselineEntry, 0, len(keys))}
	for _, k := range keys {
		parts := splitKey(k)
		bd.Findings = append(bd.Findings, baselineEntry{
			Analyzer: parts[0], Package: parts[1], Symbol: parts[2], Count: counts[k],
		})
	}
	data, err := json.MarshalIndent(&bd, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runUpdateBaseline implements -update-baseline: rewrite the file from
// the current findings, refusing (exit 2) if any per-key count would
// grow — the ratchet only turns one way. New debt must be fixed or
// suppressed with a justified lint:checked comment, not baselined away.
func runUpdateBaseline(stderr io.Writer, path string, findings []finding) int {
	counts := baselineCounts(findings)
	old, exists, err := loadBaseline(path)
	if err != nil {
		return fail(stderr, err)
	}
	if exists {
		var grown []string
		for k, n := range counts {
			if n > old[k] {
				grown = append(grown, fmt.Sprintf("  %s: %d -> %d", keyString(k), old[k], n))
			}
		}
		if len(grown) > 0 {
			sort.Strings(grown)
			fmt.Fprintf(stderr, "graphnerlint: refusing to grow the baseline (%d key(s)):\n", len(grown))
			for _, g := range grown {
				fmt.Fprintln(stderr, g)
			}
			return 2
		}
	}
	if err := writeBaseline(path, counts); err != nil {
		return fail(stderr, err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	fmt.Fprintf(stderr, "graphnerlint: baseline %s written: %d finding(s) across %d key(s)\n",
		filepath.Base(path), total, len(counts))
	return 0
}
