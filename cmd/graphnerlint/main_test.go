package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tempModule writes a small module with known findings spread over
// several packages, chdirs into it for the test's duration, and returns
// its root. The findings mix plain analyzers (floatcmp) with contract
// violations (noalloc) so baseline keys cover symbols too.
func tempModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/lintme\n\ngo 1.22\n")
	write("a/a.go", `package a

func Eq(x, y float64) bool {
	return x+1 == y
}
`)
	write("b/b.go", `package b

//graphner:noalloc
func Grow(dst []int, v int) []int {
	return append(dst, v)
}

func Close(x, y float64) bool {
	return x*2 == y
}
`)
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
	return root
}

// TestOutputDeterministicAcrossWorkers: -json and -sarif must be
// byte-identical whatever the worker count — CI diffs and the ratchet
// both depend on stable output.
func TestOutputDeterministicAcrossWorkers(t *testing.T) {
	tempModule(t)
	for _, mode := range []string{"-json", "-sarif"} {
		var ref bytes.Buffer
		if rc := run([]string{mode, "-nocache", "-workers", "1"}, &ref, io.Discard); rc != 1 {
			t.Fatalf("%s -workers 1: exit %d, want 1 (module has findings)", mode, rc)
		}
		for _, n := range []string{"2", "8"} {
			var out bytes.Buffer
			if rc := run([]string{mode, "-nocache", "-workers", n}, &out, io.Discard); rc != 1 {
				t.Fatalf("%s -workers %s: exit %d, want 1", mode, n, rc)
			}
			if !bytes.Equal(ref.Bytes(), out.Bytes()) {
				t.Errorf("%s output differs between -workers 1 and -workers %s:\n%s\n---\n%s",
					mode, n, ref.String(), out.String())
			}
		}
	}
}

// lintJSON runs the linter with -json plus extra args and decodes the
// findings.
func lintJSON(t *testing.T, extra ...string) (int, []finding) {
	t.Helper()
	var out bytes.Buffer
	rc := run(append([]string{"-json", "-nocache"}, extra...), &out, io.Discard)
	var fs []finding
	if err := json.Unmarshal(out.Bytes(), &fs); err != nil {
		t.Fatalf("bad -json output (%v): %s", err, out.String())
	}
	return rc, fs
}

// TestBaselineRoundTrip walks the ratchet's whole contract: record,
// re-lint clean, fail on exactly the one new finding, refuse to grow.
func TestBaselineRoundTrip(t *testing.T) {
	root := tempModule(t)
	bl := filepath.Join(root, "lint-baseline.json")

	// -update-baseline requires -baseline.
	if rc := run([]string{"-nocache", "-update-baseline"}, io.Discard, io.Discard); rc != 2 {
		t.Fatalf("-update-baseline without -baseline: exit %d, want 2", rc)
	}

	// Sanity: the module has findings before any baseline.
	rc, raw := lintJSON(t)
	if rc != 1 || len(raw) == 0 {
		t.Fatalf("pre-baseline lint: exit %d with %d findings, want failures", rc, len(raw))
	}

	// Bootstrap: a missing baseline file is recorded, not an error.
	if rc := run([]string{"-nocache", "-baseline", bl, "-update-baseline"}, io.Discard, io.Discard); rc != 0 {
		t.Fatalf("bootstrap -update-baseline: exit %d, want 0", rc)
	}
	if _, err := os.Stat(bl); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// Re-lint against the fresh baseline: everything suppressed.
	rc, fs := lintJSON(t, "-baseline", bl)
	if rc != 0 || len(fs) != 0 {
		t.Fatalf("baselined lint: exit %d with %d findings, want clean", rc, len(fs))
	}

	// A new violation in a new file fails, naming only itself.
	src := `package b

func Near(x, y float64) bool {
	return x/2 == y
}
`
	if err := os.WriteFile(filepath.Join(root, "b", "new.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	rc, fs = lintJSON(t, "-baseline", bl)
	if rc != 1 || len(fs) != 1 {
		t.Fatalf("lint with new violation: exit %d with %d findings, want exactly the new one: %+v", rc, len(fs), fs)
	}
	if filepath.Base(fs[0].File) != "new.go" || fs[0].Symbol != "Near" {
		t.Fatalf("surviving finding should be the new one, got %+v", fs[0])
	}

	// The ratchet refuses to absorb the growth.
	var stderr bytes.Buffer
	if rc := run([]string{"-nocache", "-baseline", bl, "-update-baseline"}, io.Discard, &stderr); rc != 2 {
		t.Fatalf("-update-baseline on grown count: exit %d, want 2 (refused)", rc)
	}
	if !strings.Contains(stderr.String(), "refusing to grow") {
		t.Fatalf("refusal should say so: %s", stderr.String())
	}

	// Fixing the violation lets the ratchet tighten.
	if err := os.Remove(filepath.Join(root, "b", "new.go")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "a", "a.go"), []byte("package a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if rc := run([]string{"-nocache", "-baseline", bl, "-update-baseline"}, io.Discard, io.Discard); rc != 0 {
		t.Fatalf("-update-baseline after fixes: exit %d, want 0", rc)
	}
	budget, exists, err := loadBaseline(bl)
	if err != nil || !exists {
		t.Fatalf("reloading tightened baseline: %v", err)
	}
	for k, n := range budget {
		if strings.Contains(k, "\x00a\x00") && n != 0 {
			t.Fatalf("fixed package a still carries debt: %s=%d", k, n)
		}
	}
}
