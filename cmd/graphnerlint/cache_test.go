package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestScanModuleDeterministic guards the cache key against map-order
// nondeterminism: external test packages create import cycles
// (foo_test -> bar -> foo), and inside a cycle the memoized transitive
// hash depends on the DFS entry point. A flapping hash would make every
// other run a cache miss.
func TestScanModuleDeterministic(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/m\n\ngo 1.22\n")
	write("foo/foo.go", "package foo\n\nfunc F() {}\n")
	write("bar/bar.go", "package bar\n\nimport \"example.com/m/foo\"\n\nfunc B() { foo.F() }\n")
	// The external test package closes the cycle foo_test -> bar -> foo.
	write("foo/foo_ext_test.go", "package foo_test\n\nimport \"example.com/m/bar\"\n\nfunc init() { bar.B() }\n")

	first, err := scanModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := scanModule(root)
		if err != nil {
			t.Fatal(err)
		}
		for rel, h := range first {
			if again[rel] != h {
				t.Fatalf("run %d: hash of %s flapped: %s vs %s", i, rel, h, again[rel])
			}
		}
		if cacheSalt(first, "") != cacheSalt(again, "") {
			t.Fatalf("run %d: salt flapped", i)
		}
	}

	// Editing a dependency must change the hash of its importers.
	write("foo/foo.go", "package foo\n\nfunc F() { _ = 1 }\n")
	changed, err := scanModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if changed["bar"] == first["bar"] {
		t.Fatal("editing foo did not invalidate bar's transitive hash")
	}
}

// TestCacheSaltTracksAnalyzerSources guards against stale-cache bugs
// where a rebuilt linter replays results recorded by an older analyzer
// suite: editing any file under internal/analysis or cmd/graphnerlint
// must change the salt, editing anything else must not, and the
// baseline content is part of the key.
func TestCacheSaltTracksAnalyzerSources(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/m\n\ngo 1.22\n")
	write("internal/analysis/a.go", "package analysis\n\nfunc A() {}\n")
	write("cmd/graphnerlint/main.go", "package main\n\nfunc main() {}\n")
	write("internal/other/b.go", "package other\n\nfunc B() {}\n")

	scan := func() map[string]string {
		h, err := scanModule(root)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	base := cacheSalt(scan(), "")

	write("internal/analysis/a.go", "package analysis\n\nfunc A() { _ = 1 }\n")
	if cacheSalt(scan(), "") == base {
		t.Fatal("editing an analyzer file did not change the cache salt")
	}
	afterAnalyzer := cacheSalt(scan(), "")

	write("cmd/graphnerlint/main.go", "package main\n\nfunc main() { _ = 2 }\n")
	if cacheSalt(scan(), "") == afterAnalyzer {
		t.Fatal("editing the driver did not change the cache salt")
	}
	afterDriver := cacheSalt(scan(), "")

	write("internal/other/b.go", "package other\n\nfunc B() { _ = 3 }\n")
	if cacheSalt(scan(), "") != afterDriver {
		t.Fatal("editing a non-analyzer file churned the cache salt")
	}

	if cacheSalt(scan(), "deadbeef") == afterDriver {
		t.Fatal("baseline content does not enter the cache salt")
	}
}
