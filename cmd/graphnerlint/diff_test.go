package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestDiffRoundTrip proves the -diff output is a working suppression
// generator for any analyzer: lint a buggy corpus, emit the diff, apply
// it, re-lint, and require zero findings. Two corpora from different
// analyzers ride through one diff to show it is analyzer-agnostic.
func TestDiffRoundTrip(t *testing.T) {
	root := t.TempDir()
	for _, corpus := range []string{"floatcmp", "lockbalance"} {
		src := filepath.Join("..", "..", "internal", "analysis", "testdata", "src", corpus)
		dst := filepath.Join(root, corpus)
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			data, err := os.ReadFile(filepath.Join(src, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	lint := func() []finding {
		var pkgs []*analysis.Package
		for _, corpus := range []string{"floatcmp", "lockbalance"} {
			pkg, err := analysis.LoadDir(filepath.Join(root, corpus))
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", corpus, err)
			}
			pkgs = append(pkgs, pkg)
		}
		diags, err := analysis.Run(pkgs, analysis.All())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var out []finding
		for _, d := range diags {
			out = append(out, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		return out
	}

	before := lint()
	if len(before) < 2 {
		t.Fatalf("corpus produced %d findings, want at least 2", len(before))
	}
	analyzers := make(map[string]bool)
	for _, f := range before {
		analyzers[f.Analyzer] = true
	}
	if len(analyzers) < 2 {
		t.Fatalf("corpus findings cover %v, want at least two analyzers", analyzers)
	}

	var diff bytes.Buffer
	if err := writeDiff(&diff, before); err != nil {
		t.Fatalf("writeDiff: %v", err)
	}
	applyDiff(t, diff.String())

	if after := lint(); len(after) != 0 {
		t.Fatalf("after applying the suppression diff, %d finding(s) remain; first: %+v", len(after), after[0])
	}
}

// applyDiff applies the insert-only unified diff writeDiff emits: for
// each hunk, the "+" lines are inserted above the original line named in
// the "@@ -L,1 ..." header.
func applyDiff(t *testing.T, diff string) {
	t.Helper()
	type insertion struct {
		line  int // 1-based original line the additions go above
		added []string
	}
	inserts := make(map[string][]insertion)
	var file string
	lines := strings.Split(diff, "\n")
	for i := 0; i < len(lines); i++ {
		l := lines[i]
		switch {
		case strings.HasPrefix(l, "+++ b/"):
			file = strings.TrimPrefix(l, "+++ b/")
		case strings.HasPrefix(l, "@@ -"):
			header := strings.TrimPrefix(l, "@@ -")
			n, err := strconv.Atoi(header[:strings.Index(header, ",")])
			if err != nil {
				t.Fatalf("bad hunk header %q: %v", l, err)
			}
			ins := insertion{line: n}
			for i+1 < len(lines) && strings.HasPrefix(lines[i+1], "+") {
				i++
				ins.added = append(ins.added, strings.TrimPrefix(lines[i], "+"))
			}
			inserts[file] = append(inserts[file], ins)
		}
	}
	if len(inserts) == 0 {
		t.Fatal("diff contained no hunks")
	}
	files := make([]string, 0, len(inserts))
	for file := range inserts {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		ins := inserts[file]
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		src := strings.Split(string(data), "\n")
		var out []string
		for i, l := range src {
			for _, in := range ins {
				if in.line == i+1 {
					out = append(out, in.added...)
				}
			}
			out = append(out, l)
		}
		if err := os.WriteFile(file, []byte(strings.Join(out, "\n")), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
