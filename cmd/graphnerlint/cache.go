package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The result cache: one entry per package directory, keyed by a hash
// that covers the directory's own .go files and, transitively, every
// module-internal dependency. Interprocedural summaries mean a package's
// findings can change when a callee three imports away changes — the
// transitive hash makes exactly that set of edits invalidating, nothing
// less. A run over an unchanged tree therefore never loads or
// type-checks anything: it re-emits the cached findings after a cheap
// parse of import clauses.
//
// The analyzers themselves are part of the key (the salt below): editing
// internal/analysis or this command invalidates everything.

const cacheDirName = ".graphnerlint-cache"

// cacheEntry is the stored result for one package directory.
type cacheEntry struct {
	Hash     string    `json:"hash"`
	Findings []finding `json:"findings"` // File is module-root-relative
}

// cacheFile is the on-disk shape.
type cacheFile struct {
	Salt     string                `json:"salt"`
	Packages map[string]cacheEntry `json:"packages"` // key: root-relative dir
}

// pkgDir is one scanned package directory.
type pkgDir struct {
	rel     string   // root-relative directory
	deps    []string // root-relative dirs of module-internal imports
	ownHash string
}

// scanModule walks the module tree and computes the per-directory
// transitive content hashes. Parsing stops at the import clause, so the
// scan costs milliseconds, not a type-check.
func scanModule(root string) (map[string]string, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs := make(map[string]*pkgDir)
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			switch info.Name() {
			case ".git", "testdata", cacheDirName:
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		d := dirs[rel]
		if d == nil {
			d = &pkgDir{rel: rel}
			dirs[rel] = d
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Filename-tagged file hashes accumulate here and are combined
		// sorted below, so walk order cannot change the key.
		sum := sha256.Sum256(data)
		d.ownHash += filepath.Base(path) + ":" + hex.EncodeToString(sum[:]) + "\n"

		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, data, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("graphnerlint: parse %s: %w", path, err)
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == modPath {
				d.deps = append(d.deps, ".")
			} else if strings.HasPrefix(p, modPath+"/") {
				d.deps = append(d.deps, filepath.FromSlash(strings.TrimPrefix(p, modPath+"/")))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Canonicalize: file hashes sorted into the own hash, deps deduped.
	for _, d := range dirs {
		lines := strings.Split(strings.TrimSuffix(d.ownHash, "\n"), "\n")
		sort.Strings(lines)
		sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
		d.ownHash = hex.EncodeToString(sum[:])
		sort.Strings(d.deps)
		d.deps = dedupe(d.deps)
	}

	// Transitive hashes by memoized DFS. Compiling packages cannot form
	// import cycles, but external test packages can (foo_test importing a
	// package that imports foo), and this scan folds test imports into the
	// dep edges. Inside a cycle the memoized hash depends on which member
	// is visited first, so the roots below are walked in sorted order to
	// pin the entry point; an unknown dep (pruned dir) contributes nothing.
	memo := make(map[string]string)
	var visit func(rel string, stack map[string]bool) string
	visit = func(rel string, stack map[string]bool) string {
		if h, ok := memo[rel]; ok {
			return h
		}
		d := dirs[rel]
		if d == nil || stack[rel] {
			return ""
		}
		stack[rel] = true
		parts := []string{d.ownHash}
		for _, dep := range d.deps {
			if dep == rel {
				continue
			}
			if h := visit(dep, stack); h != "" {
				parts = append(parts, dep+"="+h)
			}
		}
		delete(stack, rel)
		sum := sha256.Sum256([]byte(strings.Join(parts, "\n")))
		memo[rel] = hex.EncodeToString(sum[:])
		return memo[rel]
	}
	rels := make([]string, 0, len(dirs))
	for rel := range dirs {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	out := make(map[string]string, len(dirs))
	for _, rel := range rels {
		out[rel] = visit(rel, make(map[string]bool))
	}
	return out, nil
}

func dedupe(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// cacheSalt keys everything that can change findings without touching
// the analyzed packages: the linter's own build fingerprint (the
// transitive hashes of the analysis packages — directive parsing
// included — and this command) plus the baseline file's content hash.
func cacheSalt(hashes map[string]string, baselineHash string) string {
	parts := []string{"baseline=" + baselineHash}
	for rel, h := range hashes {
		slash := filepath.ToSlash(rel)
		if strings.HasPrefix(slash, "internal/analysis") || slash == "cmd/graphnerlint" {
			parts = append(parts, slash+"="+h)
		}
	}
	sort.Strings(parts)
	sum := sha256.Sum256([]byte(strings.Join(parts, "\n")))
	return hex.EncodeToString(sum[:])
}

// hashFileContent hashes one file, "" when it does not exist — used to
// fold the baseline into the cache salt.
func hashFileContent(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// modulePath reads the module path from go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("graphnerlint: no module line in %s/go.mod", root)
}

// loadCache returns the cached findings when every scanned directory has
// a fresh entry — all-or-nothing, because the interprocedural run is
// module-wide anyway. Findings come back root-relative.
func loadCache(root string, hashes map[string]string, salt string) ([]finding, bool) {
	data, err := os.ReadFile(filepath.Join(root, cacheDirName, "results.json"))
	if err != nil {
		return nil, false
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil || cf.Salt != salt {
		return nil, false
	}
	var out []finding
	for rel, h := range hashes {
		e, ok := cf.Packages[filepath.ToSlash(rel)]
		if !ok || e.Hash != h {
			return nil, false
		}
		out = append(out, e.Findings...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out, true
}

// saveCache stores the run's findings against the scanned hashes.
// Findings arrive root-relative; each is attached to its directory.
func saveCache(root string, hashes map[string]string, salt string, findings []finding) error {
	cf := cacheFile{Salt: salt, Packages: make(map[string]cacheEntry, len(hashes))}
	rels := make([]string, 0, len(hashes))
	for rel := range hashes {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		cf.Packages[filepath.ToSlash(rel)] = cacheEntry{Hash: hashes[rel], Findings: []finding{}}
	}
	for _, f := range findings {
		rel := filepath.ToSlash(filepath.Dir(f.File))
		e, ok := cf.Packages[rel]
		if !ok {
			continue // outside the scan (should not happen); recompute next run
		}
		e.Findings = append(e.Findings, f)
		cf.Packages[rel] = e
	}
	data, err := json.MarshalIndent(&cf, "", " ")
	if err != nil {
		return err
	}
	dir := filepath.Join(root, cacheDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, "results.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "results.json"))
}
