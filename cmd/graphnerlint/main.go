// Command graphnerlint runs the repository's analyzer suite (see
// internal/analysis) over the module and exits non-zero on findings.
//
// Usage:
//
//	graphnerlint [packages]
//
// With no arguments or "./..." it checks every package in the module.
// Individual package directories (relative or absolute) narrow the run,
// but cross-package facts are still computed module-wide so pool
// helpers are recognized regardless of the selection.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: graphnerlint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}

	// "./..." (or nothing) means the whole module; otherwise the named
	// directories. Facts want the full module either way, so selection
	// only filters which packages' diagnostics are kept.
	var only map[string]bool
	for _, arg := range flag.Args() {
		if arg == "./..." || arg == "..." || arg == "all" {
			only = nil
			break
		}
		abs, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
		if err != nil {
			fatal(err)
		}
		if only == nil {
			only = make(map[string]bool)
		}
		only[abs] = true
	}

	pkgs, err := analysis.Load(root, nil)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fatal(err)
	}

	cwd, _ := os.Getwd()
	n := 0
	for _, d := range diags {
		if only != nil && !only[filepath.Dir(d.Pos.Filename)] {
			continue
		}
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		n++
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "graphnerlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("graphnerlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
