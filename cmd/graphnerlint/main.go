// Command graphnerlint runs the repository's analyzer suite (see
// internal/analysis) over the module and exits non-zero on findings.
//
// Usage:
//
//	graphnerlint [-list] [-json|-sarif|-diff] [-baseline f [-update-baseline]]
//	             [-workers N] [-nocache] [-cpuprofile f] [packages]
//
// With no arguments or "./..." it checks every package in the module.
// Individual package directories (relative or absolute) narrow the run,
// but cross-package facts, the call graph, and the effect summaries are
// still computed module-wide, so pool helpers, mutex-guarded fields and
// callee effects are recognized regardless of the selection.
//
// Results are cached under .graphnerlint-cache/, keyed per package
// directory by a transitive content hash (own files plus every
// module-internal dependency, plus the analyzers themselves). A run over
// an unchanged tree skips loading and type-checking entirely; -nocache
// bypasses and leaves the cache untouched.
//
// Output modes:
//
//	(default)  one "file:line:col: analyzer: message" line per finding
//	-json      a JSON array of {file,line,col,analyzer,message,symbol}
//	           objects
//	-sarif     a SARIF 2.1.0 log for CI annotation tooling; every
//	           analyzer is listed as a rule, findings as "error"-level
//	           results
//	-diff      a unified diff that inserts a "// lint:checked TODO"
//	           suppression comment above every finding — for any
//	           registered analyzer — for triage: apply it with
//	           `patch -p1`, then replace each TODO with a real
//	           justification or fix the code and drop the comment
//
// The lint ratchet: -baseline f suppresses findings recorded in f —
// counted per {analyzer, package, symbol}, line-number-free — and fails
// only on findings beyond the recorded counts. -update-baseline
// rewrites f from the current run but refuses to grow any count, so
// accepted debt can only shrink. The baseline content and the linter's
// own sources are both part of the result-cache key.
//
// Exit codes (all output modes, -sarif included):
//
//	0  no findings
//	1  at least one finding
//	2  internal error (load failure, bad arguments, refused baseline
//	   growth)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Symbol   string `json:"symbol,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, parameterized over argv and the output
// streams so tests can invoke it in-process and compare bytes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("graphnerlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	asDiff := fs.Bool("diff", false, "emit a unified diff adding lint:checked TODO suppressions")
	workers := fs.Int("workers", 0, "package-level analyzer goroutines (0 = GOMAXPROCS)")
	noCache := fs.Bool("nocache", false, "ignore and do not update the result cache")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the lint run to this file")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this baseline file; fail only on new ones")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the -baseline file from this run (refuses to grow any count)")
	fs.Usage = func() {
		fmt.Fprintf(stderr,
			"usage: graphnerlint [-list] [-json|-sarif|-diff] [-baseline file [-update-baseline]] [-workers N] [-nocache] [-cpuprofile file] [packages]\n\n"+
				"exit codes: 0 no findings, 1 findings, 2 internal error\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	modes := 0
	for _, m := range []bool{*asJSON, *asSARIF, *asDiff} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(stderr, "graphnerlint: -json, -sarif and -diff are mutually exclusive")
		return 2
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "graphnerlint: -update-baseline requires -baseline")
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(stderr, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(stderr, err)
		}
		defer pprof.StopCPUProfile()
	}

	root, err := moduleRoot()
	if err != nil {
		return fail(stderr, err)
	}

	// The baseline participates in the cache key (via the salt below):
	// editing it invalidates cached results, so a ratcheted run can never
	// be answered from a cache recorded against a different baseline. The
	// default path is hashed even when -baseline is off, so plain and
	// ratcheted runs share cache entries.
	bpath := filepath.Join(root, "lint-baseline.json")
	if *baselinePath != "" {
		if bpath, err = filepath.Abs(*baselinePath); err != nil {
			return fail(stderr, err)
		}
	}

	// "./..." (or nothing) means the whole module; otherwise the named
	// directories. The analysis is module-wide either way, so selection
	// only filters which packages' diagnostics are kept.
	var only map[string]bool
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." || arg == "all" {
			only = nil
			break
		}
		abs, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
		if err != nil {
			return fail(stderr, err)
		}
		if only == nil {
			only = make(map[string]bool)
		}
		only[abs] = true
	}

	// The cache answers when every package directory's transitive hash is
	// fresh; otherwise run the full module-wide analysis and store the
	// results. The cache stores RAW findings — the baseline filter is
	// applied after, so cached and fresh runs ratchet identically.
	// Findings are module-root-relative throughout.
	var findings []finding
	var hashes map[string]string
	var salt string
	cached := false
	if !*noCache {
		if hashes, err = scanModule(root); err == nil {
			salt = cacheSalt(hashes, hashFileContent(bpath))
			findings, cached = loadCache(root, hashes, salt)
		}
	}
	if !cached {
		pkgs, err := analysis.Load(root, nil)
		if err != nil {
			return fail(stderr, err)
		}
		n := *workers
		if n < 1 {
			n = runtime.GOMAXPROCS(0)
		}
		diags, err := analysis.RunN(pkgs, analysis.All(), n)
		if err != nil {
			return fail(stderr, err)
		}
		for _, d := range diags {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			findings = append(findings, finding{
				File:     file,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Symbol:   d.Symbol,
			})
		}
		if !*noCache && hashes != nil {
			if err := saveCache(root, hashes, salt, findings); err != nil {
				fmt.Fprintln(stderr, "graphnerlint: cache write:", err)
			}
		}
	}

	// Baseline modes operate on the full root-relative finding set,
	// before any package selection narrows it.
	if *updateBaseline {
		return runUpdateBaseline(stderr, bpath, findings)
	}
	if *baselinePath != "" {
		budget, _, err := loadBaseline(bpath)
		if err != nil {
			return fail(stderr, err)
		}
		var suppressed int
		findings, suppressed = applyBaseline(findings, budget)
		if suppressed > 0 {
			fmt.Fprintf(stderr, "graphnerlint: %d baselined finding(s) suppressed\n", suppressed)
		}
	}

	// Narrow to the selection and re-anchor paths to the working
	// directory so they are clickable and patchable from where the user
	// ran the command.
	cwd, _ := os.Getwd()
	out := findings[:0:0]
	for _, f := range findings {
		abs := filepath.Join(root, f.File)
		if only != nil && !only[filepath.Dir(abs)] {
			continue
		}
		f.File = abs
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, abs); err == nil && !strings.HasPrefix(rel, "..") {
				f.File = rel
			}
		}
		out = append(out, f)
	}
	findings = out

	switch {
	case *asJSON:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			return fail(stderr, err)
		}
	case *asSARIF:
		if err := writeSARIF(stdout, findings); err != nil {
			return fail(stderr, err)
		}
	case *asDiff:
		if err := writeDiff(stdout, findings); err != nil {
			return fail(stderr, err)
		}
	default:
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "graphnerlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// writeDiff renders the findings as a unified diff that inserts a
// suppression comment above each finding line, whatever analyzer
// produced it. Findings on the same line collapse into one comment per
// message; the comment copies the line's indentation so the patched file
// stays gofmt-clean.
func writeDiff(w io.Writer, findings []finding) error {
	byFile := make(map[string][]finding)
	var files []string
	for _, f := range findings {
		if len(byFile[f.File]) == 0 {
			files = append(files, f.File)
		}
		byFile[f.File] = append(byFile[f.File], f)
	}
	sort.Strings(files)

	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		lines := strings.Split(string(data), "\n")

		fs := byFile[file]
		sort.Slice(fs, func(i, j int) bool { return fs[i].Line < fs[j].Line })
		// Collapse findings per line, preserving every message.
		type annot struct {
			line int
			msgs []string
		}
		var annots []annot
		for _, f := range fs {
			msg := fmt.Sprintf("TODO(%s): %s", f.Analyzer, f.Message)
			if n := len(annots); n > 0 && annots[n-1].line == f.Line {
				annots[n-1].msgs = append(annots[n-1].msgs, msg)
				continue
			}
			annots = append(annots, annot{line: f.Line, msgs: []string{msg}})
		}

		fmt.Fprintf(w, "--- a/%s\n+++ b/%s\n", file, file)
		added := 0
		for _, a := range annots {
			if a.line < 1 || a.line > len(lines) {
				continue
			}
			orig := lines[a.line-1]
			indent := orig[:len(orig)-len(strings.TrimLeft(orig, " \t"))]
			fmt.Fprintf(w, "@@ -%d,1 +%d,%d @@\n", a.line, a.line+added, 1+len(a.msgs))
			for _, m := range a.msgs {
				fmt.Fprintf(w, "+%s// lint:checked %s\n", indent, m)
			}
			fmt.Fprintf(w, " %s\n", orig)
			added += len(a.msgs)
		}
	}
	return nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("graphnerlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, err)
	return 2
}
