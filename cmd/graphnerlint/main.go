// Command graphnerlint runs the repository's analyzer suite (see
// internal/analysis) over the module and exits non-zero on findings.
//
// Usage:
//
//	graphnerlint [-list] [-json] [-diff] [packages]
//
// With no arguments or "./..." it checks every package in the module.
// Individual package directories (relative or absolute) narrow the run,
// but cross-package facts are still computed module-wide so pool
// helpers and mutex-guarded fields are recognized regardless of the
// selection.
//
// Output modes:
//
//	(default)  one "file:line:col: analyzer: message" line per finding
//	-json      a JSON array of {file,line,col,analyzer,message} objects
//	-diff      a unified diff that inserts a "// lint:checked TODO"
//	           suppression comment above every finding, for triage:
//	           apply it with `patch -p1`, then replace each TODO with a
//	           real justification or fix the code and drop the comment
//
// Exit codes:
//
//	0  no findings
//	1  at least one finding
//	2  internal error (load failure, bad arguments)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	asDiff := flag.Bool("diff", false, "emit a unified diff adding lint:checked TODO suppressions")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: graphnerlint [-list] [-json] [-diff] [packages]\n\n"+
				"exit codes: 0 no findings, 1 findings, 2 internal error\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *asJSON && *asDiff {
		fmt.Fprintln(os.Stderr, "graphnerlint: -json and -diff are mutually exclusive")
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}

	// "./..." (or nothing) means the whole module; otherwise the named
	// directories. Facts want the full module either way, so selection
	// only filters which packages' diagnostics are kept.
	var only map[string]bool
	for _, arg := range flag.Args() {
		if arg == "./..." || arg == "..." || arg == "all" {
			only = nil
			break
		}
		abs, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
		if err != nil {
			fatal(err)
		}
		if only == nil {
			only = make(map[string]bool)
		}
		only[abs] = true
	}

	pkgs, err := analysis.Load(root, nil)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fatal(err)
	}

	cwd, _ := os.Getwd()
	var findings []finding
	for _, d := range diags {
		if only != nil && !only[filepath.Dir(d.Pos.Filename)] {
			continue
		}
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		findings = append(findings, finding{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}

	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	case *asDiff:
		if err := writeDiff(os.Stdout, findings); err != nil {
			fatal(err)
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "graphnerlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// writeDiff renders the findings as a unified diff that inserts a
// suppression comment above each finding line. Findings on the same line
// collapse into one comment; the comment copies the line's indentation so
// the patched file stays gofmt-clean.
func writeDiff(w *os.File, findings []finding) error {
	byFile := make(map[string][]finding)
	var files []string
	for _, f := range findings {
		if len(byFile[f.File]) == 0 {
			files = append(files, f.File)
		}
		byFile[f.File] = append(byFile[f.File], f)
	}
	sort.Strings(files)

	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		lines := strings.Split(string(data), "\n")

		fs := byFile[file]
		sort.Slice(fs, func(i, j int) bool { return fs[i].Line < fs[j].Line })
		// Collapse findings per line, preserving every message.
		type annot struct {
			line int
			msgs []string
		}
		var annots []annot
		for _, f := range fs {
			msg := fmt.Sprintf("TODO(%s): %s", f.Analyzer, f.Message)
			if n := len(annots); n > 0 && annots[n-1].line == f.Line {
				annots[n-1].msgs = append(annots[n-1].msgs, msg)
				continue
			}
			annots = append(annots, annot{line: f.Line, msgs: []string{msg}})
		}

		fmt.Fprintf(w, "--- a/%s\n+++ b/%s\n", file, file)
		added := 0
		for _, a := range annots {
			if a.line < 1 || a.line > len(lines) {
				continue
			}
			orig := lines[a.line-1]
			indent := orig[:len(orig)-len(strings.TrimLeft(orig, " \t"))]
			fmt.Fprintf(w, "@@ -%d,1 +%d,%d @@\n", a.line, a.line+added, 1+len(a.msgs))
			for _, m := range a.msgs {
				fmt.Fprintf(w, "+%s// lint:checked %s\n", indent, m)
			}
			fmt.Fprintf(w, " %s\n", orig)
			added += len(a.msgs)
		}
	}
	return nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("graphnerlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
