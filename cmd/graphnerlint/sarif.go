package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
)

// Minimal SARIF 2.1.0 output — the subset CI annotation tooling
// (GitHub code scanning, reviewdog, sarif-tools) actually reads: one run,
// one rule per analyzer, one result per finding with a physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders the findings as a SARIF log. Every registered
// analyzer appears as a rule whether or not it fired, so consumers can
// distinguish "clean" from "not run".
func writeSARIF(w io.Writer, findings []finding) error {
	var rules []sarifRule
	for _, a := range analysis.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := []sarifResult{}
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "graphnerlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
