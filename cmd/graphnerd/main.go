// Command graphnerd is the long-lived GraphNER tagging service: it loads
// one frozen artifact (written by `graphner freeze`), coalesces
// concurrent tagging requests into shared per-worker batches, enforces
// per-request deadlines with graceful shedding, and optionally folds
// served traffic back into the similarity graph on a background cadence.
//
//	graphnerd -artifact artifact.gna [-addr :8080] [-line-addr :8081]
//	          [-workers N] [-batch 32] [-batch-wait 0] [-deadline 1s]
//	          [-queue N] [-cache 4096] [-stream] [-stream-batch 256]
//
// HTTP endpoints (on -addr): POST /tag (JSON {"sentences": [...],
// "deadline_ms": 0}), GET /healthz, GET /statusz. The line protocol (on
// -line-addr, disabled when empty) answers one raw sentence per line
// with its space-separated BIO tags, or "ERR <message>".
//
// Shutdown: SIGINT/SIGTERM stop the listeners, drain in-flight requests,
// and answer anything still queued with a closed error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/graphner"
	"repro/internal/serving"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphnerd:", err)
		os.Exit(1)
	}
}

func run() error {
	artifactPath := flag.String("artifact", "", "frozen artifact file (required; see `graphner freeze`)")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	lineAddr := flag.String("line-addr", "", "line-protocol listen address (disabled when empty)")
	workers := flag.Int("workers", 0, "batch workers (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 32, "max requests coalesced per worker batch")
	batchWait := flag.Duration("batch-wait", 0, "how long a non-full batch lingers for stragglers")
	deadline := flag.Duration("deadline", time.Second, "default per-request deadline (0 = none)")
	queue := flag.Int("queue", 0, "request queue depth (0 = 4×workers×batch)")
	cache := flag.Int("cache", 4096, "compiled-sentence cache entries per worker")
	stream := flag.Bool("stream", false, "fold served traffic back into the similarity graph")
	streamBatch := flag.Int("stream-batch", 256, "with -stream: sentences per background fold-in")
	flag.Parse()
	if *artifactPath == "" {
		flag.Usage()
		return fmt.Errorf("-artifact is required")
	}

	f, err := os.Open(*artifactPath)
	if err != nil {
		return err
	}
	t0 := time.Now()
	art, err := graphner.ReadArtifact(f)
	f.Close() // lint:checked errdrop: read-only artifact handle; the decode already validated the stream
	if err != nil {
		return err
	}
	g := art.Graph()
	fmt.Printf("loaded %s in %v: %d vertices / %d edges, %d features, sha256 %s\n",
		*artifactPath, time.Since(t0).Round(time.Millisecond),
		g.NumVertices(), g.NumEdges(), art.Model().NumFeatures, art.Checksum())

	cfg := serving.Config{
		Workers:    *workers,
		BatchMax:   *batch,
		BatchWait:  *batchWait,
		Deadline:   *deadline,
		QueueDepth: *queue,
		CacheCap:   *cache,
	}
	if *stream {
		cfg.Stream = &serving.StreamConfig{BatchSize: *streamBatch}
		fmt.Println("stream mode: running initial transductive pass...")
	}
	srv, err := serving.NewServer(art, cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()
	fmt.Printf("serving HTTP on %s with %d workers\n", *addr, effectiveWorkers(*workers))

	var lineLn net.Listener
	lineErr := make(chan error, 1)
	if *lineAddr != "" {
		lineLn, err = net.Listen("tcp", *lineAddr)
		if err != nil {
			return err
		}
		go func() {
			if err := srv.ServeLine(lineLn); err != nil {
				lineErr <- err
			}
		}()
		fmt.Printf("serving line protocol on %s\n", *lineAddr)
	}

	select {
	case <-ctx.Done():
		fmt.Println("shutting down...")
	case err := <-httpErr:
		return err
	case err := <-lineErr:
		return err
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "graphnerd: http shutdown:", err)
	}
	if lineLn != nil {
		lineLn.Close() // lint:checked errdrop: process shutdown; nothing is left to surface a close error to
	}
	srv.Close()
	st := srv.Stats()
	fmt.Printf("served %d requests in %d batches (%d shed, %d overloaded, %d fold-ins)\n",
		st.Served, st.Batches, st.Shed, st.Overloaded, st.Folds)
	return nil
}

func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
