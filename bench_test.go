// Macro-benchmarks: one per table and figure of the paper's evaluation
// section, plus scaling benches for the complexity claims of §II-E and
// ablation benches for the design choices called out in DESIGN.md.
//
// These are end-to-end experiment regenerations, so a single iteration
// dominates; `go test -bench=.` runs each once at a reduced scale. Use
// cmd/benchtables for larger scales and nicer rendering.
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/crf"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/graphner"
	"repro/internal/propagate"
)

// benchScale keeps the full bench suite within minutes.
var benchScale = experiments.Scale{
	Name: "bench", Sentences: 1000, CRFIterations: 25, CRFOrder: crf.Order1,
	NeuralEpochs: 6, NeuralSentences: 400, SigfRepetitions: 1000,
	BrownClusters: 8, BrownMaxWords: 250, W2VDim: 8,
}

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// env returns the process-wide experiment environment; benchmarks run
// sequentially, so sharing cached corpora/systems across them is safe and
// mirrors how cmd/benchtables amortizes work.
func env() *experiments.Env {
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv(benchScale, 7, nil)
	})
	return benchEnv
}

func BenchmarkTable1_BC2GM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := env().Table1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*tab.Rows[len(tab.Rows)-1].Metrics.F1, "GraphNER-F%")
	}
}

func BenchmarkTable2_AML(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := env().Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*tab.Rows[len(tab.Rows)-1].Metrics.F1, "GraphNER-F%")
	}
}

func BenchmarkTable3_FeatureSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := env().Table3()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable4_CrossValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		grid, err := env().Table4(synth.BC2GM, experiments.BANNER, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*grid[0].F1, "bestCV-F%")
	}
}

func BenchmarkTable5_Significance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hs, err := env().Table5()
		if err != nil {
			b.Fatal(err)
		}
		if len(hs) != 8 {
			b.Fatalf("got %d hypotheses", len(hs))
		}
	}
}

func BenchmarkFig2_TimeCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := env().Figure2([]int{7, 5, 3}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 3 {
			b.Fatal("missing points")
		}
	}
}

func BenchmarkFig3_Influence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := env().Figure3(synth.BC2GM); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_UpsetAML(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := env().UpsetFigure(synth.AML); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_UpsetBC2GM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := env().UpsetFigure(synth.BC2GM); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := env().GraphStatistics(synth.BC2GM)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*st.PositiveFraction, "positive%")
	}
}

func BenchmarkExtension_AbundantUnlabelled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := env().AbundantUnlabelled(synth.BC2GM, 800)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.WithExtra.F1, "withExtra-F%")
		b.ReportMetric(100*res.Transductive.F1, "transductive-F%")
	}
}

// Scaling benches for the complexity claims of §II-E.

// BenchmarkScaling_GraphConstruction exercises the O(Nf + V²FK) claim:
// build time versus corpus size.
func BenchmarkScaling_GraphConstruction(b *testing.B) {
	for _, n := range []int{250, 500, 1000} {
		b.Run(fmt.Sprintf("sentences=%d", n), func(b *testing.B) {
			cfg := synth.DefaultConfig(synth.BC2GM, 5)
			cfg.Sentences = n
			c := synth.NewGenerator(cfg).Generate()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := graph.Build(c, graph.BuilderConfig{K: 10})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(g.NumVertices()), "vertices")
			}
		})
	}
}

// BenchmarkScaling_Propagation exercises the O(V·K·#iterations) claim.
func BenchmarkScaling_Propagation(b *testing.B) {
	cfg := synth.DefaultConfig(synth.BC2GM, 5)
	cfg.Sentences = 1000
	c := synth.NewGenerator(cfg).Generate()
	g, err := graph.Build(c, graph.BuilderConfig{K: 10})
	if err != nil {
		b.Fatal(err)
	}
	refs := graphner.ReferenceDistributions(c)
	xref := make([][]float64, g.NumVertices())
	labelled := make([]bool, g.NumVertices())
	for v, ng := range g.Vertices {
		if d, ok := refs[ng]; ok {
			xref[v], labelled[v] = d, true
		}
	}
	for _, iters := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("iterations=%d", iters), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				X := make([][]float64, g.NumVertices())
				if _, err := propagate.Run(g, X, xref, labelled, propagate.Config{
					Mu: 1e-6, Nu: 1e-6, Iterations: iters,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaling_ReferenceDistributions exercises the O(N_l + V_l)
// added-training-cost claim.
func BenchmarkScaling_ReferenceDistributions(b *testing.B) {
	for _, n := range []int{500, 1000, 2000} {
		b.Run(fmt.Sprintf("sentences=%d", n), func(b *testing.B) {
			cfg := synth.DefaultConfig(synth.BC2GM, 5)
			cfg.Sentences = n
			c := synth.NewGenerator(cfg).Generate()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				graphner.ReferenceDistributions(c)
			}
		})
	}
}

// Ablation benches for the design choices in DESIGN.md.

func ablationCorpora(n int) (*corpus.Corpus, *corpus.Corpus) {
	cfg := synth.DefaultConfig(synth.BC2GM, 9)
	cfg.Sentences = n
	return synth.GenerateSplit(cfg)
}

// BenchmarkAblation_CRFOrder compares order-1 and order-2 training cost
// and reports decoded F.
func BenchmarkAblation_CRFOrder(b *testing.B) {
	train, test := ablationCorpora(600)
	for _, order := range []crf.Order{crf.Order1, crf.Order2} {
		b.Run(fmt.Sprintf("order=%d", order), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := graphner.Default()
				cfg.Order = order
				cfg.CRFIterations = 25
				sys, err := graphner.Train(train, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := experiments.Score(test, sys.BaselineTags(test))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.Metrics().F1, "F%")
			}
		})
	}
}

// BenchmarkAblation_TransductiveVsInductive compares the paper's single
// transductive pass against the Subramanya-style self-training loop.
func BenchmarkAblation_TransductiveVsInductive(b *testing.B) {
	train, test := ablationCorpora(500)
	cfg := graphner.Default()
	cfg.Order = crf.Order1
	cfg.CRFIterations = 20
	cfg.K = 5
	b.Run("transductive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, err := graphner.Train(train, cfg)
			if err != nil {
				b.Fatal(err)
			}
			out, err := sys.Test(test)
			if err != nil {
				b.Fatal(err)
			}
			res, err := experiments.Score(test, out.Tags)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.Metrics().F1, "F%")
		}
	})
	b.Run("inductive-3rounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rounds, err := graphner.Inductive(train, test.StripLabels(), cfg, 3)
			if err != nil {
				b.Fatal(err)
			}
			out := rounds[len(rounds)-1].Output
			res, err := experiments.Score(test, out.Tags)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.Metrics().F1, "F%")
		}
	})
}

// BenchmarkAblation_PropagationSymmetrize compares directed versus
// symmetrized neighbour propagation.
func BenchmarkAblation_PropagationSymmetrize(b *testing.B) {
	cfg := synth.DefaultConfig(synth.BC2GM, 5)
	cfg.Sentences = 800
	c := synth.NewGenerator(cfg).Generate()
	g, err := graph.Build(c, graph.BuilderConfig{K: 10})
	if err != nil {
		b.Fatal(err)
	}
	refs := graphner.ReferenceDistributions(c)
	xref := make([][]float64, g.NumVertices())
	labelled := make([]bool, g.NumVertices())
	for v, ng := range g.Vertices {
		if d, ok := refs[ng]; ok {
			xref[v], labelled[v] = d, true
		}
	}
	for _, sym := range []bool{false, true} {
		b.Run(fmt.Sprintf("symmetrize=%v", sym), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				X := make([][]float64, g.NumVertices())
				if _, err := propagate.Run(g, X, xref, labelled, propagate.Config{
					Mu: 1e-6, Nu: 1e-6, Iterations: 3, Symmetrize: sym,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_KNNMaxDF measures the inverted-index pruning lever of
// graph construction.
func BenchmarkAblation_KNNMaxDF(b *testing.B) {
	cfg := synth.DefaultConfig(synth.BC2GM, 5)
	cfg.Sentences = 600
	c := synth.NewGenerator(cfg).Generate()
	for _, maxDF := range []int{0, 2000, 500} {
		b.Run(fmt.Sprintf("maxDF=%d", maxDF), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := graph.Build(c, graph.BuilderConfig{K: 10, MaxDF: maxDF})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(g.NumEdges()), "edges")
			}
		})
	}
}

// BenchmarkAblation_ChemDNERFeatures isolates the cost of distributional
// feature extraction (Brown + word2vec classes) in CRF compilation.
func BenchmarkAblation_ChemDNERFeatures(b *testing.B) {
	train, _ := ablationCorpora(400)
	classer, err := env().Classer(synth.BC2GM)
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range []struct {
		name string
		ex   *features.Extractor
	}{
		{"banner", features.NewExtractor(nil)},
		{"chemdner", features.NewExtractor(classer)},
	} {
		b.Run(spec.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				comp := crf.NewCompiler(spec.ex)
				comp.Compile(train)
				b.ReportMetric(float64(comp.Alphabet.Len()), "features")
			}
		})
	}
}
